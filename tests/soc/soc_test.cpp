// SOC composer end-to-end: chip composition, bit-identical results at any
// core-flow job count and SIMD backend, the SOC sweep grid, and an 8-core
// chip job through the flow server with its ledger line.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "../common/test_circuits.hpp"
#include "flow/flow_config.hpp"
#include "server/flow_server.hpp"
#include "sim/simd.hpp"
#include "soc/soc.hpp"
#include "soc/soc_sweep.hpp"
#include "util/json.hpp"
#include "util/ledger.hpp"

namespace tpi {
namespace {

using test::lib;

/// Chip small enough for unit tests: scaled-down paper cores, one ATPG job
/// per core (the SOC layer parallelises across cores instead).
SocOptions tiny_soc(int cores, int tam_width) {
  SocOptions opts;
  opts.cores = cores;
  opts.tam_width = tam_width;
  opts.scale = 0.02;
  opts.flow.tp_percent = 1.0;
  opts.flow.atpg.jobs = 1;
  return opts;
}

TEST(SocCoreSpecsTest, CyclesProfilesDownTheSizeLadder) {
  const auto specs = soc_core_specs(10, 1.0);
  ASSERT_EQ(specs.size(), 10u);
  EXPECT_EQ(specs[0].label, "core0:s38417");
  EXPECT_EQ(specs[1].label, "core1:circuit1");
  EXPECT_EQ(specs[2].label, "core2:p26909");
  EXPECT_EQ(specs[3].label, "core3:s38417");
  // Names stay the paper's (no "_x<f>" suffix from scaled()).
  for (const SocCoreSpec& s : specs) {
    EXPECT_EQ(s.profile.name.find("_x"), std::string::npos) << s.label;
  }
  // Cores 3..5 ride the 0.7 rung: strictly smaller than their 1.0 twins.
  EXPECT_LT(specs[3].profile.num_ffs, specs[0].profile.num_ffs);
  // Core 9 wraps back to the 1.0 rung of s38417: an exact repeat of core 0,
  // which is what makes the DesignCache pay off (<= 9 distinct designs).
  EXPECT_EQ(specs[9].profile.num_ffs, specs[0].profile.num_ffs);
  EXPECT_EQ(specs[9].profile.seed, specs[0].profile.seed);
}

// Acceptance criterion: the chip-level result (including the scheduled
// TAT) is byte-identical whether the core flows ran serially or on four
// workers, and across every SIMD backend compiled into this build.
TEST(SocRunnerTest, ResultBitIdenticalAcrossJobCountsAndBackends) {
  SocOptions opts = tiny_soc(4, 16);
  opts.jobs = 1;
  const std::string reference = soc_result_to_json(SocRunner(opts).run(lib()));
  EXPECT_NE(reference.find("\"chip_tat_cycles\""), std::string::npos);
  EXPECT_NE(reference.find("\"soc.chip_tat_cycles\""), std::string::npos);

  opts.jobs = 4;
  EXPECT_EQ(soc_result_to_json(SocRunner(opts).run(lib())), reference);

  for (const SimdBackend b :
       {SimdBackend::kScalar, SimdBackend::kAvx2, SimdBackend::kAvx512}) {
    if (!simd_backend_available(b)) continue;
    set_simd_backend(b);
    EXPECT_EQ(soc_result_to_json(SocRunner(opts).run(lib())), reference)
        << simd_backend_name(b);
  }
  set_simd_backend(std::nullopt);
}

TEST(SocRunnerTest, ScheduleBeatsSerialAndCoversEveryCore) {
  SocOptions opts = tiny_soc(5, 8);
  opts.jobs = 2;
  const SocResult res = SocRunner(opts).run(lib());
  ASSERT_EQ(res.per_core.size(), 5u);
  EXPECT_GT(res.chip_tat_cycles, 0);
  EXPECT_LE(res.chip_tat_cycles, res.serial_tat_cycles);
  EXPECT_GT(res.tam_utilization_pct, 0.0);
  for (const SocCoreResult& core : res.per_core) {
    SCOPED_TRACE(core.label);
    EXPECT_GT(core.envelope.patterns, 0);
    EXPECT_GT(core.test_cycles, 0);
    EXPECT_GE(core.tam_start, 0);
    EXPECT_LE(core.tam_start + core.width, res.tam_width);
    EXPECT_LE(core.finish_cycle, res.chip_tat_cycles);
    EXPECT_GT(core.flow.num_cells, 0);
  }
  // The merged snapshot carries both per-core flow metrics and the chip
  // metrics the Prometheus exposition and the ledger surface.
  EXPECT_NE(res.metrics.find("flow.stages_run"), nullptr);
  const MetricValue* tat = res.metrics.find("soc.chip_tat_cycles");
  ASSERT_NE(tat, nullptr);
  EXPECT_DOUBLE_EQ(tat->value, static_cast<double>(res.chip_tat_cycles));
}

TEST(SocSweepTest, GridEnumeratesCoresMajorWithLabels) {
  FlowConfig cfg;
  const auto jobs = SocSweepRunner::grid({2, 4}, {8, 16}, {0.0, 1.0}, cfg);
  ASSERT_EQ(jobs.size(), 8u);
  EXPECT_EQ(jobs[0].label, "soc=2/tam=8/tp=0");
  EXPECT_EQ(jobs[1].label, "soc=2/tam=8/tp=1");
  EXPECT_EQ(jobs[2].label, "soc=2/tam=16/tp=0");
  EXPECT_EQ(jobs[7].label, "soc=4/tam=16/tp=1");
  EXPECT_EQ(jobs[7].options.cores, 4);
  EXPECT_EQ(jobs[7].options.tam_width, 16);
  EXPECT_DOUBLE_EQ(jobs[7].options.flow.tp_percent, 1.0);
}

// The SOC sweep analogue of the single-core bit-identity sweep test: the
// per-cell deterministic payloads (and the ledger lines they feed) agree
// byte-for-byte between a serial and a parallel run.
TEST(SocSweepTest, CellsBitIdenticalAcrossJobCountsWithLedger) {
  const std::string ledger_path = ::testing::TempDir() + "tpi_soc_ledger.jsonl";
  std::remove(ledger_path.c_str());

  FlowConfig cfg;
  cfg.scale = 0.02;
  cfg.options.atpg.jobs = 1;
  const auto jobs = SocSweepRunner::grid({2, 3}, {8}, {0.0, 1.0}, cfg);

  SweepOptions serial;
  serial.jobs = 1;
  serial.progress = false;
  serial.ledger = ledger_path;
  const SocSweepReport a = SocSweepRunner(serial).run(lib(), jobs);

  SweepOptions parallel;
  parallel.jobs = 4;
  parallel.progress = false;
  parallel.ledger = ledger_path;
  const SocSweepReport b = SocSweepRunner(parallel).run(lib(), jobs);

  ASSERT_EQ(a.cells.size(), jobs.size());
  ASSERT_EQ(b.cells.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].label);
    EXPECT_EQ(soc_result_to_json(a.cells[i].result),
              soc_result_to_json(b.cells[i].result));
  }
  EXPECT_EQ(a.metrics.to_json(MetricsSnapshot::kNoRuntime),
            b.metrics.to_json(MetricsSnapshot::kNoRuntime));
  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"name\": \"soc=2/tam=8/tp=0\""), std::string::npos);
  EXPECT_NE(json.find("\"chip_tat_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"serial_tat_cycles\""), std::string::npos);

  // Both sweeps appended one line per cell; matching cells have matching
  // config fingerprints and byte-identical SOC payloads.
  const std::vector<LedgerEntry> entries = Ledger::read_file(ledger_path);
  ASSERT_EQ(entries.size(), 2 * jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(entries[i].label, jobs[i].label);
    EXPECT_EQ(entries[i].config_fp, entries[i + jobs.size()].config_fp);
    EXPECT_EQ(entries[i].flow.serialise(), entries[i + jobs.size()].flow.serialise());
    EXPECT_NE(entries[i].flow.find("chip_tat_cycles"), nullptr);
  }
  std::remove(ledger_path.c_str());
}

// Acceptance criterion: an 8-core SOC job completes end-to-end through the
// flow server, with the chip payload in the result RPC and in the ledger.
TEST(SocServerTest, EightCoreJobThroughFlowServerWithLedger) {
  const std::string ledger_path = ::testing::TempDir() + "tpi_soc_server_ledger.jsonl";
  std::remove(ledger_path.c_str());

  FlowConfig base;
  base.scale = 0.02;
  base.options.atpg.jobs = 1;
  base.bench_jobs = 2;
  base.ledger = ledger_path;
  FlowServerOptions opts;
  opts.workers = 2;
  FlowServer server(base, opts);

  const std::string submit_req =
      "{\"id\": 1, \"method\": \"submit\", \"params\": "
      "{\"tp_percent\": 1.0, \"soc\": {\"cores\": 8, \"tam_width\": 16}}}";
  const JsonParseResult submit = json_parse(server.handle_request(submit_req));
  ASSERT_TRUE(submit.ok) << submit.error;
  ASSERT_EQ(submit.value.find("error"), nullptr) << server.handle_request(submit_req);
  const std::uint64_t job = static_cast<std::uint64_t>(
      submit.value.find("result")->find("job")->as_number());

  const JsonParseResult done = json_parse(server.handle_request(
      "{\"id\": 2, \"method\": \"result\", \"params\": {\"job\": " +
      std::to_string(job) + ", \"wait\": true}}"));
  ASSERT_TRUE(done.ok) << done.error;
  const JsonValue* result = done.value.find("result");
  ASSERT_NE(result, nullptr) << done.value.serialise();
  EXPECT_EQ(result->find("state")->as_string(), "done");
  const JsonValue* flow = result->find("flow");
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->find("cores")->as_int(), 8);
  EXPECT_EQ(flow->find("tam_width")->as_int(), 16);
  EXPECT_GT(flow->find("chip_tat_cycles")->as_int(), 0);
  ASSERT_NE(flow->find("per_core"), nullptr);
  EXPECT_EQ(flow->find("per_core")->as_array().size(), 8u);

  // Prometheus exposition picked up the server-side SOC metrics.
  const JsonParseResult metrics = json_parse(server.handle_request(
      "{\"id\": 3, \"method\": \"metrics\", \"params\": {}}"));
  ASSERT_TRUE(metrics.ok);
  const std::string prom =
      metrics.value.find("result")->find("prometheus")->as_string();
  EXPECT_NE(prom.find("tpi_server_soc_jobs_done"), std::string::npos);
  EXPECT_NE(prom.find("tpi_server_soc_chip_tat_cycles"), std::string::npos);

  server.stop();
  const std::vector<LedgerEntry> entries = Ledger::read_file(ledger_path);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].label, "soc=8/tam=16/tp=1");
  EXPECT_NE(entries[0].flow.find("chip_tat_cycles"), nullptr);
  EXPECT_NE(entries[0].config.find("soc"), nullptr);
  std::remove(ledger_path.c_str());
}

// The "profile" key is ignored for SOC jobs: a submission whose base
// profile would not resolve must still be admitted when soc.cores > 0.
TEST(SocServerTest, SubmitSkipsProfileResolutionForSocJobs) {
  FlowConfig base;
  base.scale = 0.02;
  FlowServerOptions opts;
  opts.workers = 1;
  FlowServer server(base, opts);
  const JsonParseResult bad = json_parse(server.handle_request(
      "{\"id\": 1, \"method\": \"submit\", \"params\": {\"profile\": \"nope\"}}"));
  ASSERT_TRUE(bad.ok);
  EXPECT_NE(bad.value.find("error"), nullptr);
  const JsonParseResult soc = json_parse(server.handle_request(
      "{\"id\": 1, \"method\": \"submit\", \"params\": {\"profile\": \"nope\", "
      "\"soc\": {\"cores\": 1, \"tam_width\": 4}}}"));
  ASSERT_TRUE(soc.ok);
  EXPECT_EQ(soc.value.find("error"), nullptr) << soc.value.serialise();
  server.stop();
}

}  // namespace
}  // namespace tpi
