// Property-based tests of the wrapper/TAM layer and the rectangle
// bin-packing test scheduler: on randomized core sets the schedule must
// never overlap rectangles, never exceed the TAM budget, respect the Islam
// et al. lower bounds, and be bit-deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "soc/packing.hpp"
#include "soc/wrapper.hpp"

namespace tpi {
namespace {

CoreTestEnvelope random_envelope(std::mt19937_64& rng, int index) {
  CoreTestEnvelope env;
  env.label = "core" + std::to_string(index);
  env.scan_ffs = static_cast<int>(rng() % 4000);
  env.chains = 1 + static_cast<int>(rng() % 32);
  env.inputs = static_cast<int>(rng() % 200);
  env.outputs = static_cast<int>(rng() % 200);
  env.patterns = 1 + static_cast<int>(rng() % 900);
  env.capture_cycles = (rng() % 2 == 0) ? 1 : 2;
  return env;
}

struct Instance {
  std::vector<CoreTestEnvelope> cores;
  std::vector<std::vector<WrapperDesign>> candidates;
  int tam_width = 0;
};

Instance random_instance(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Instance inst;
  static constexpr int kWidths[] = {1, 2, 3, 8, 16, 32, 64};
  inst.tam_width = kWidths[rng() % (sizeof kWidths / sizeof kWidths[0])];
  const int n = 1 + static_cast<int>(rng() % 12);
  for (int i = 0; i < n; ++i) {
    inst.cores.push_back(random_envelope(rng, i));
    inst.candidates.push_back(pareto_wrappers(inst.cores.back(), inst.tam_width));
  }
  return inst;
}

/// Islam et al. lower bound on the strip length given the committed
/// rectangles: test-data area / TAM width, and the longest single test.
std::int64_t lower_bound(const SocSchedule& s) {
  std::int64_t area = 0;
  std::int64_t longest = 0;
  for (const ScheduledRect& r : s.rects) {
    area += static_cast<std::int64_t>(r.width) * (r.finish - r.start);
    longest = std::max(longest, r.finish - r.start);
  }
  const std::int64_t area_lb =
      (area + s.tam_width - 1) / s.tam_width;  // ceil(area / W)
  return std::max(area_lb, longest);
}

void check_schedule(const Instance& inst, const SocSchedule& s) {
  ASSERT_EQ(s.rects.size(), inst.cores.size());
  ASSERT_EQ(s.tam_width, inst.tam_width);
  for (std::size_t i = 0; i < s.rects.size(); ++i) {
    const ScheduledRect& r = s.rects[i];
    SCOPED_TRACE(inst.cores[i].label);
    EXPECT_EQ(r.core, static_cast<int>(i));
    EXPECT_GE(r.width, 1);
    // No rectangle exceeds the TAM budget.
    EXPECT_GE(r.tam_start, 0);
    EXPECT_LE(r.tam_start + r.width, inst.tam_width);
    EXPECT_GE(r.start, 0);
    EXPECT_GT(r.finish, r.start);  // patterns >= 1 => positive test time
    EXPECT_LE(r.finish, s.makespan);
  }
  // No two rectangles overlap: TAM-line ranges that intersect must have
  // disjoint time intervals.
  for (std::size_t a = 0; a < s.rects.size(); ++a) {
    for (std::size_t b = a + 1; b < s.rects.size(); ++b) {
      const ScheduledRect& ra = s.rects[a];
      const ScheduledRect& rb = s.rects[b];
      const bool lines_overlap = ra.tam_start < rb.tam_start + rb.width &&
                                 rb.tam_start < ra.tam_start + ra.width;
      const bool times_overlap = ra.start < rb.finish && rb.start < ra.finish;
      EXPECT_FALSE(lines_overlap && times_overlap)
          << inst.cores[a].label << " vs " << inst.cores[b].label;
    }
  }
  EXPECT_GE(s.makespan, lower_bound(s));
  EXPECT_GT(s.utilization_pct, 0.0);
  EXPECT_LE(s.utilization_pct, 100.0 + 1e-9);
}

TEST(WrapperTest, WidthOneSerialisesEverything) {
  CoreTestEnvelope env;
  env.scan_ffs = 100;
  env.chains = 4;
  env.inputs = 7;
  env.outputs = 5;
  env.patterns = 10;
  env.capture_cycles = 1;
  const WrapperDesign d = design_wrapper(env, 1);
  EXPECT_EQ(d.scan_in, 107);   // all FFs + all input cells on one chain
  EXPECT_EQ(d.scan_out, 105);  // all FFs + all output cells
  EXPECT_EQ(d.test_cycles, (1 + 107) * 10 + 105);
}

TEST(WrapperTest, ParetoSetIsStrictlyImproving) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const CoreTestEnvelope env = random_envelope(rng, trial);
    const auto cands = pareto_wrappers(env, 64);
    ASSERT_FALSE(cands.empty());
    EXPECT_EQ(cands.front().width, 1);
    for (std::size_t i = 1; i < cands.size(); ++i) {
      EXPECT_GT(cands[i].width, cands[i - 1].width);
      EXPECT_LT(cands[i].test_cycles, cands[i - 1].test_cycles);
    }
    // T(w) matches the Iyengar formula for every kept design.
    for (const WrapperDesign& d : cands) {
      const std::int64_t longest = std::max(d.scan_in, d.scan_out);
      const std::int64_t shortest = std::min(d.scan_in, d.scan_out);
      EXPECT_EQ(d.test_cycles,
                (env.capture_cycles + longest) * env.patterns + shortest);
      // A w-chain wrapper can never beat perfect balance.
      EXPECT_GE(d.scan_in * d.width, env.scan_ffs + env.inputs);
      EXPECT_GE(d.scan_out * d.width, env.scan_ffs + env.outputs);
    }
  }
}

TEST(PackingTest, RandomInstancesSatisfyInvariants) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const Instance inst = random_instance(seed);
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " W=" + std::to_string(inst.tam_width) +
                 " n=" + std::to_string(inst.cores.size()));
    check_schedule(inst, schedule_tests(inst.candidates, inst.tam_width,
                                        SocScheduleMethod::kDiagonal));
    check_schedule(inst, schedule_tests(inst.candidates, inst.tam_width,
                                        SocScheduleMethod::kSerial));
  }
}

TEST(PackingTest, SerialBaselineRunsCoresBackToBack) {
  const Instance inst = random_instance(5);
  const SocSchedule s =
      schedule_tests(inst.candidates, inst.tam_width, SocScheduleMethod::kSerial);
  std::int64_t t = 0;
  for (const ScheduledRect& r : s.rects) {
    EXPECT_EQ(r.start, t);
    EXPECT_EQ(r.tam_start, 0);
    t = r.finish;
  }
  EXPECT_EQ(s.makespan, t);
}

TEST(PackingTest, DiagonalNeverLosesToSerial) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const Instance inst = random_instance(seed);
    const std::int64_t diagonal =
        schedule_tests(inst.candidates, inst.tam_width, SocScheduleMethod::kDiagonal)
            .makespan;
    const std::int64_t serial =
        schedule_tests(inst.candidates, inst.tam_width, SocScheduleMethod::kSerial)
            .makespan;
    // Serial runs every core at its widest Pareto width over the full TAM;
    // the packer considers that same width among its candidates, so it can
    // always fall back to the serial layout.
    EXPECT_LE(diagonal, serial) << "seed=" << seed;
  }
}

TEST(PackingTest, ScheduleIsDeterministic) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Instance inst = random_instance(seed);
    for (const SocScheduleMethod m :
         {SocScheduleMethod::kDiagonal, SocScheduleMethod::kSerial}) {
      const SocSchedule a = schedule_tests(inst.candidates, inst.tam_width, m);
      const SocSchedule b = schedule_tests(inst.candidates, inst.tam_width, m);
      ASSERT_EQ(a.rects.size(), b.rects.size());
      EXPECT_EQ(a.makespan, b.makespan);
      EXPECT_DOUBLE_EQ(a.utilization_pct, b.utilization_pct);
      for (std::size_t i = 0; i < a.rects.size(); ++i) {
        EXPECT_EQ(a.rects[i].tam_start, b.rects[i].tam_start);
        EXPECT_EQ(a.rects[i].width, b.rects[i].width);
        EXPECT_EQ(a.rects[i].start, b.rects[i].start);
        EXPECT_EQ(a.rects[i].finish, b.rects[i].finish);
      }
    }
  }
}

TEST(PackingTest, ScheduleNameRoundTrips) {
  EXPECT_EQ(soc_schedule_from_name("diagonal"), SocScheduleMethod::kDiagonal);
  EXPECT_EQ(soc_schedule_from_name("serial"), SocScheduleMethod::kSerial);
  EXPECT_FALSE(soc_schedule_from_name("greedy").has_value());
  EXPECT_STREQ(soc_schedule_name(SocScheduleMethod::kDiagonal), "diagonal");
  EXPECT_STREQ(soc_schedule_name(SocScheduleMethod::kSerial), "serial");
}

}  // namespace
}  // namespace tpi
