// At-speed LBIST: transition-fault BIST sessions qualified against a
// capture clock period (F_max from STA in the full flow). The defect-size
// model makes qualification monotone in the period — at speed nearly every
// site with positive arrival qualifies, at a slowed clock almost nothing
// does — which is exactly the coverage gap the flow-level report exposes.
#include "bist/lbist.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"
#include "flow/flow.hpp"
#include "flow/flow_json.hpp"
#include "flow/sweep.hpp"

namespace tpi {
namespace {

using test::lib;

TEST(AtSpeedLbistTest, QualificationFiltersByArrivalAndPeriod) {
  auto nl = generate_circuit(lib(), test::tiny_profile(301));
  CombModel model(*nl, SeqView::kCapture);
  std::vector<double> arrival(nl->num_nets(), 500.0);

  LbistOptions opts;
  opts.max_patterns = 2048;
  opts.fault_model = FaultModel::kTransition;
  opts.fault_size_ps = 600.0;
  opts.arrival_ps = &arrival;

  // arrival + delta = 1100 ps: observable at T = 1000, swallowed at 2000.
  opts.capture_period_ps = 1000.0;
  const LbistResult fast = run_lbist(model, opts);
  EXPECT_DOUBLE_EQ(fast.capture_period_ps, 1000.0);
  EXPECT_GT(fast.qualified, 0);
  EXPECT_LT(fast.qualified, fast.total_faults);  // scan-tested never re-qualify
  EXPECT_GT(fast.detected, 0);

  opts.capture_period_ps = 2000.0;
  const LbistResult slow = run_lbist(model, opts);
  EXPECT_EQ(slow.qualified, 0);
  EXPECT_EQ(slow.detected, 0);
  EXPECT_LT(slow.final_coverage_pct, fast.final_coverage_pct);

  // No period -> no qualification: the whole universe stays eligible.
  opts.capture_period_ps = 0.0;
  const LbistResult all = run_lbist(model, opts);
  EXPECT_EQ(all.qualified, all.total_faults);
}

TEST(AtSpeedLbistTest, GrossDefectDefaultQualifiesPositiveArrivalSites) {
  // fault_size_ps <= 0 means "one full capture period": a site qualifies
  // exactly when its arrival is positive, independent of the period.
  auto nl = generate_circuit(lib(), test::tiny_profile(302));
  CombModel model(*nl, SeqView::kCapture);
  std::vector<double> arrival(nl->num_nets(), 0.0);
  // Mark half the nets as having logic depth.
  for (std::size_t n = 0; n < arrival.size(); n += 2) arrival[n] = 250.0;

  LbistOptions opts;
  opts.max_patterns = 1024;
  opts.fault_model = FaultModel::kTransition;
  opts.capture_period_ps = 1234.0;
  opts.arrival_ps = &arrival;
  const LbistResult r = run_lbist(model, opts);
  EXPECT_GT(r.qualified, 0);
  EXPECT_LT(r.qualified, r.total_faults);

  std::int64_t expected = 0;
  const FaultList fl = build_fault_list(model, FaultModel::kTransition);
  for (const Fault& f : fl.faults) {
    if (f.status == FaultStatus::kUndetected &&
        arrival[static_cast<std::size_t>(f.net)] > 0.0) {
      expected += f.equiv_count;
    }
  }
  EXPECT_EQ(r.qualified, expected);
}

TEST(AtSpeedLbistTest, FlowReportWiresCapturePeriodFromSta) {
  FlowOptions opts;
  opts.tp_percent = 2.0;
  opts.at_speed_lbist = true;
  FlowEngine engine(lib(), test::tiny_profile(303), opts);
  const FlowResult& res = engine.run(StageMask::all());

  ASSERT_TRUE(res.sta.worst.valid);
  ASSERT_TRUE(res.at_speed.ran);
  // The at-speed capture clock IS the post-TPI F_max period.
  EXPECT_DOUBLE_EQ(res.at_speed.capture_period_ps, res.sta.worst.t_cp_ps);
  EXPECT_GT(res.at_speed.qualified_faults, 0);
  EXPECT_GT(res.at_speed.total_faults, 0);
  EXPECT_GT(res.at_speed.at_speed_coverage_pct, 0.0);
  // The slowed session (kAtSpeedSlowFactor x t_cp) qualifies almost
  // nothing, so running at speed is strictly better.
  EXPECT_GT(res.at_speed.coverage_delta_pct(), 0.0);

  const std::string json = flow_result_to_json(res);
  EXPECT_NE(json.find("\"at_speed\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage_delta_pct\""), std::string::npos);
}

TEST(AtSpeedLbistTest, DefaultFlowJsonOmitsAtSpeedAndFaultModel) {
  FlowOptions opts;
  opts.tp_percent = 2.0;
  FlowEngine engine(lib(), test::tiny_profile(303), opts);
  const std::string json = flow_result_to_json(engine.run(StageMask::all()));
  EXPECT_EQ(json.find("at_speed"), std::string::npos);
  EXPECT_EQ(json.find("fault_model"), std::string::npos);
}

TEST(AtSpeedLbistTest, SweepJsonCarriesAtSpeedBlock) {
  FlowOptions base;
  base.tp_percent = 2.0;
  base.at_speed_lbist = true;
  const std::vector<SweepJob> jobs =
      SweepRunner::grid({test::tiny_profile(304)}, {2.0}, base, StageMask::all());
  SweepOptions sopts;
  sopts.jobs = 1;
  sopts.progress = false;
  const SweepReport report = SweepRunner(sopts).run(lib(), jobs);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"at_speed\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage_delta_pct\""), std::string::npos);
  EXPECT_NE(json.find("\"qualified_faults\""), std::string::npos);
}

}  // namespace
}  // namespace tpi
