#include "bist/lbist.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"
#include "tpi/tpi.hpp"

namespace tpi {
namespace {

using test::lib;

TEST(LfsrTest, FullPeriodForSmallDegree) {
  Lfsr lfsr(8, 1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 255; ++i) {
    EXPECT_TRUE(seen.insert(lfsr.step()).second) << "state repeated at step " << i;
  }
  // A primitive degree-8 polynomial cycles through all 255 nonzero states.
  EXPECT_EQ(seen.size(), 255u);
  // The 256th step closes the cycle: back to an already-seen state.
  EXPECT_TRUE(seen.contains(lfsr.step()));
}

TEST(LfsrTest, NeverReachesZeroState) {
  Lfsr lfsr(16, 0);  // zero seed coerced to nonzero
  for (int i = 0; i < 70000; ++i) {
    ASSERT_NE(lfsr.step(), 0u);
  }
}

TEST(LfsrTest, WordsLookBalanced) {
  Lfsr lfsr(32, 0xBEEF);
  int ones = 0;
  const int words = 512;
  for (int i = 0; i < words; ++i) ones += std::popcount(lfsr.next_word());
  const double ratio = static_cast<double>(ones) / (words * 64.0);
  EXPECT_NEAR(ratio, 0.5, 0.02);
}

TEST(MisrTest, SignatureDependsOnEveryInput) {
  Misr a(32, 0), b(32, 0);
  for (int i = 0; i < 100; ++i) {
    a.absorb(static_cast<std::uint64_t>(i));
    b.absorb(static_cast<std::uint64_t>(i == 57 ? 9999 : i));  // one corrupt word
  }
  EXPECT_NE(a.signature(), b.signature());
}

TEST(MisrTest, DeterministicSignature) {
  Misr a(32, 7), b(32, 7);
  for (int i = 0; i < 64; ++i) {
    a.absorb(0x1234 + static_cast<std::uint64_t>(i));
    b.absorb(0x1234 + static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(a.signature(), b.signature());
}

TEST(LbistTest, CoverageCurveIsMonotone) {
  auto nl = generate_circuit(lib(), test::tiny_profile(201));
  CombModel model(*nl, SeqView::kCapture);
  LbistOptions opts;
  opts.max_patterns = 4096;
  opts.report_every = 512;
  const LbistResult r = run_lbist(model, opts);
  ASSERT_GE(r.coverage_curve.size(), 2u);
  for (std::size_t i = 1; i < r.coverage_curve.size(); ++i) {
    EXPECT_GE(r.coverage_curve[i].second, r.coverage_curve[i - 1].second);
    EXPECT_GT(r.coverage_curve[i].first, r.coverage_curve[i - 1].first);
  }
  EXPECT_GT(r.final_coverage_pct, 60.0);
  EXPECT_LE(r.final_coverage_pct, 100.0);
}

TEST(LbistTest, DeterministicForFixedSeed) {
  auto nl = generate_circuit(lib(), test::tiny_profile(202));
  CombModel model(*nl, SeqView::kCapture);
  const LbistResult a = run_lbist(model, {});
  const LbistResult b = run_lbist(model, {});
  EXPECT_EQ(a.signature, b.signature);
  EXPECT_EQ(a.detected, b.detected);
}

TEST(LbistTest, PseudoRandomResistantFaultsCapCoverage) {
  // A circuit with gated hard regions: pure pseudo-random BIST must leave
  // the resistant faults undetected (the §2 motivation for TPI).
  CircuitProfile p = test::tiny_profile(203);
  p.num_comb_gates = 900;
  p.num_hard_blocks = 3;
  p.hard_block_width = 14;
  p.hard_classes_per_block = 10;
  p.hard_mode_bits = 5;
  auto nl = generate_circuit(lib(), p);
  CombModel model(*nl, SeqView::kCapture);
  LbistOptions opts;
  opts.max_patterns = 8192;
  const LbistResult r = run_lbist(model, opts);
  EXPECT_LT(r.final_coverage_pct, 97.0);  // resistant faults cap the curve
}

TEST(LbistTest, TestPointsLiftPseudoRandomCoverage) {
  // The §2 claim end-to-end: same circuit, same pattern budget, but with
  // test points inserted -> strictly higher pseudo-random fault coverage.
  CircuitProfile p = test::tiny_profile(204);
  p.num_comb_gates = 900;
  p.num_hard_blocks = 3;
  p.hard_block_width = 14;
  p.hard_classes_per_block = 10;
  p.hard_mode_bits = 5;

  auto plain = generate_circuit(lib(), p);
  auto pointed = generate_circuit(lib(), p);
  TpiOptions tpi_opts;
  tpi_opts.num_test_points = 3;
  insert_test_points(*pointed, tpi_opts);

  LbistOptions opts;
  opts.max_patterns = 8192;
  CombModel plain_model(*plain, SeqView::kCapture);
  CombModel pointed_model(*pointed, SeqView::kCapture);
  const LbistResult before = run_lbist(plain_model, opts);
  const LbistResult after = run_lbist(pointed_model, opts);
  EXPECT_GT(after.final_coverage_pct, before.final_coverage_pct + 1.0);
}

}  // namespace
}  // namespace tpi
