// SweepRunner tests: deterministic parallel execution of the paper's
// (circuit x tp_percent) grid. The load-bearing property is that results
// are bit-identical at any job count.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "../common/test_circuits.hpp"
#include "flow/sweep.hpp"
#include "util/json_check.hpp"
#include "util/ledger.hpp"
#include "util/metrics.hpp"

namespace tpi {
namespace {

using test::lib;

std::vector<SweepJob> tiny_grid() {
  return SweepRunner::grid({test::tiny_profile(31), test::tiny_profile(32)},
                           {0.0, 2.0, 5.0}, FlowOptions{}, StageMask::all());
}

TEST(SweepRunnerTest, GridEnumeratesCircuitMajorWithLabels) {
  const auto jobs = tiny_grid();
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_EQ(jobs[0].label, "tiny/tp=0");
  EXPECT_EQ(jobs[1].label, "tiny/tp=2");
  EXPECT_EQ(jobs[2].label, "tiny/tp=5");
  EXPECT_DOUBLE_EQ(jobs[1].options.tp_percent, 2.0);
  EXPECT_EQ(jobs[3].profile.seed, test::tiny_profile(32).seed);
  EXPECT_EQ(jobs[0].stages, StageMask::all());
}

TEST(SweepRunnerTest, EffectiveJobsClampsToAtLeastOne) {
  EXPECT_GE(SweepRunner(SweepOptions{}).effective_jobs(), 1);
  SweepOptions two;
  two.jobs = 2;
  EXPECT_EQ(SweepRunner(two).effective_jobs(), 2);
}

// The acceptance property: same seeds => bit-identical FlowResult for every
// grid cell, regardless of how many workers executed the sweep.
TEST(SweepRunnerTest, ParallelMatchesSerialBitExactly) {
  SweepOptions serial_opts;
  serial_opts.jobs = 1;
  serial_opts.progress = false;
  SweepOptions parallel_opts;
  parallel_opts.jobs = 4;
  parallel_opts.progress = false;

  const SweepReport serial = SweepRunner(serial_opts).run(lib(), tiny_grid());
  const SweepReport parallel = SweepRunner(parallel_opts).run(lib(), tiny_grid());

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  EXPECT_EQ(serial.jobs, 1);
  EXPECT_EQ(parallel.jobs, 4);
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const FlowResult& a = serial.cells[i].result;
    const FlowResult& b = parallel.cells[i].result;
    SCOPED_TRACE(serial.cells[i].job.label);
    EXPECT_EQ(serial.cells[i].job.label, parallel.cells[i].job.label);
    EXPECT_EQ(a.num_test_points, b.num_test_points);
    EXPECT_EQ(a.num_ffs, b.num_ffs);
    EXPECT_EQ(a.num_chains, b.num_chains);
    EXPECT_EQ(a.num_faults, b.num_faults);
    EXPECT_EQ(a.saf_patterns, b.saf_patterns);
    EXPECT_EQ(a.tdv_bits, b.tdv_bits);
    EXPECT_EQ(a.num_cells, b.num_cells);
    EXPECT_DOUBLE_EQ(a.fault_coverage_pct, b.fault_coverage_pct);
    EXPECT_DOUBLE_EQ(a.scan_wire_length_um, b.scan_wire_length_um);
    EXPECT_DOUBLE_EQ(a.wire_length_um, b.wire_length_um);
    EXPECT_DOUBLE_EQ(a.chip_area_um2, b.chip_area_um2);
    EXPECT_DOUBLE_EQ(a.core_area_um2, b.core_area_um2);
    EXPECT_DOUBLE_EQ(a.sta.worst.t_cp_ps, b.sta.worst.t_cp_ps);
  }
}

// The deterministic metrics snapshot merged into the report must be
// bit-identical at any job count: exactly what the TPI_BENCH_JSON
// "metrics" key promises.
TEST(SweepRunnerTest, MergedMetricsDeterministicAcrossJobCounts) {
  SweepOptions serial_opts;
  serial_opts.jobs = 1;
  serial_opts.progress = false;
  SweepOptions parallel_opts;
  parallel_opts.jobs = 4;
  parallel_opts.progress = false;

  const SweepReport serial = SweepRunner(serial_opts).run(lib(), tiny_grid());
  const SweepReport parallel = SweepRunner(parallel_opts).run(lib(), tiny_grid());

  const std::string a = serial.metrics.to_json(MetricsSnapshot::kNoRuntime);
  const std::string b = parallel.metrics.to_json(MetricsSnapshot::kNoRuntime);
  EXPECT_EQ(a, b);
  // The merge actually picked up the per-layer counters.
  for (const char* name :
       {"atpg.sim.faults_graded", "atpg.podem.calls", "flow.stages_run",
        "placement.global_iterations", "routing.net_length_um", "sta.runs",
        "sim.good_sweeps", "designdb.view_hits", "designdb.rebuilds"}) {
    EXPECT_NE(serial.metrics.find(name), nullptr) << name;
    EXPECT_NE(a.find(name), std::string::npos) << name;
  }
  // Runtime ("rt.*") metrics never leak into the deterministic serialisation.
  EXPECT_EQ(a.find("\"rt."), std::string::npos);
  // Histogram summaries (quantiles are pure functions of the pow2 buckets,
  // so they inherit the bit-identity the EXPECT_EQ above just proved).
  for (const char* field : {"\"mean\": ", "\"p50\": ", "\"p95\": ", "\"p99\": "}) {
    EXPECT_NE(a.find(field), std::string::npos) << field;
  }
  const MetricValue* net_len = serial.metrics.find("routing.net_length_um");
  ASSERT_NE(net_len, nullptr);
  ASSERT_EQ(net_len->kind, MetricKind::kHistogram);
  EXPECT_LE(net_len->hist.quantile(0.50), net_len->hist.quantile(0.95));
  EXPECT_LE(net_len->hist.quantile(0.95), net_len->hist.quantile(0.99));
}

// Trace-file names must be injective in the label: the old '/'-to-'_'
// mapping sent "s38417/tp=2" and "s38417_tp=2" to the same file, silently
// clobbering one cell's trace with the other's.
TEST(SweepRunnerTest, SanitizeTraceLabelIsCollisionFree) {
  EXPECT_EQ(sanitize_trace_label("s38417/tp=2"), "s38417_2ftp=2");
  EXPECT_EQ(sanitize_trace_label("s38417_tp=2"), "s38417_5ftp=2");
  EXPECT_NE(sanitize_trace_label("s38417/tp=2"), sanitize_trace_label("s38417_tp=2"));
  EXPECT_NE(sanitize_trace_label("a b"), sanitize_trace_label("a/b"));
  EXPECT_NE(sanitize_trace_label("a b"), sanitize_trace_label("a_b"));
  // Safe characters pass through verbatim; escapes are lowercase hex.
  EXPECT_EQ(sanitize_trace_label("tiny.tp=0-v2"), "tiny.tp=0-v2");
  EXPECT_EQ(sanitize_trace_label("soc=8/tam=32/tp=1"), "soc=8_2ftam=32_2ftp=1");
}

// Per-cell flight recorders + the run ledger: every sweep cell writes its
// own Chrome trace under SweepOptions::trace_dir and appends one ledger
// line, in submission order, with a deterministic flow payload.
TEST(SweepRunnerTest, TraceDirAndLedgerRecordEveryCell) {
  const std::string trace_dir = ::testing::TempDir() + "tpi_sweep_traces";
  const std::string ledger_path = ::testing::TempDir() + "tpi_sweep_ledger.jsonl";
  std::remove(ledger_path.c_str());

  SweepOptions opts;
  opts.jobs = 2;
  opts.progress = false;
  opts.trace_dir = trace_dir;
  opts.ledger = ledger_path;
  // Distinct profile names: trace file names derive from the cell label,
  // so same-named profiles would share (and clobber) one file.
  CircuitProfile pa = test::tiny_profile(31);
  pa.name = "tinyA";
  CircuitProfile pb = test::tiny_profile(32);
  pb.name = "tinyB";
  const auto jobs =
      SweepRunner::grid({pa, pb}, {0.0, 2.0, 5.0}, FlowOptions{}, StageMask::all());
  SweepRunner(opts).run(lib(), jobs);

  for (const SweepJob& job : jobs) {
    // "tinyA/tp=0" -> "tinyA_2ftp=0.trace.json" (sanitize_trace_label).
    const std::string path =
        trace_dir + "/" + sanitize_trace_label(job.label) + ".trace.json";
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << path;
    std::string contents;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());
    std::string error;
    EXPECT_TRUE(json_well_formed(contents, &error)) << path << ": " << error;
    EXPECT_NE(contents.find("tpi_scan"), std::string::npos) << path;
    EXPECT_NE(contents.find(job.label), std::string::npos) << path;  // process row
  }

  const std::vector<LedgerEntry> entries = Ledger::read_file(ledger_path);
  ASSERT_EQ(entries.size(), jobs.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].schema, kLedgerSchemaVersion);
    EXPECT_EQ(entries[i].label, jobs[i].label);  // submission order, not finish
    EXPECT_NE(entries[i].flow.find("num_cells"), nullptr);
    EXPECT_NE(entries[i].flow.find("metrics"), nullptr);
    // The ledger records the deterministic snapshot only.
    EXPECT_EQ(entries[i].flow.serialise().find("\"rt."), std::string::npos);
  }

  // Re-running serially appends flow payloads byte-identical to the
  // parallel run's — the property bench_compare.py --ledger leans on.
  SweepOptions serial = opts;
  serial.jobs = 1;
  serial.trace_dir.clear();
  SweepRunner(serial).run(lib(), jobs);
  const std::vector<LedgerEntry> again = Ledger::read_file(ledger_path);
  ASSERT_EQ(again.size(), 2 * jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(again[i].config_fp, again[i + jobs.size()].config_fp);
    EXPECT_EQ(again[i].flow.serialise(), again[i + jobs.size()].flow.serialise());
  }
  std::remove(ledger_path.c_str());
  ::rmdir(trace_dir.c_str());
}

TEST(SweepRunnerTest, ReportAggregatesStageTotals) {
  SweepOptions opts;
  opts.jobs = 2;
  opts.progress = false;
  const SweepReport report = SweepRunner(opts).run(lib(), tiny_grid());

  EXPECT_GT(report.wall_ms, 0.0);
  EXPECT_GE(report.cpu_ms, report.wall_ms * 0.5);  // sanity, not a perf claim
  double sum = 0.0;
  for (const double ms : report.stage_total_ms) sum += ms;
  EXPECT_GT(sum, 0.0);
  // Stage totals are the sum of the per-cell stage timings.
  double cell_sum = 0.0;
  for (const auto& cell : report.cells) cell_sum += cell.result.timings.total_ms();
  EXPECT_NEAR(sum, cell_sum, 1e-6);
}

TEST(SweepRunnerTest, JsonReportContainsCellsAndStageTotals) {
  SweepOptions opts;
  opts.jobs = 1;
  opts.progress = false;
  FlowOptions base;
  const auto jobs =
      SweepRunner::grid({test::tiny_profile(33)}, {2.0}, base,
                        StageMask::all().without(Stage::kReorderAtpg));
  const SweepReport report = SweepRunner(opts).run(lib(), jobs);
  const std::string json = report.to_json();

  EXPECT_NE(json.find("\"context\""), std::string::npos);
  EXPECT_NE(json.find("\"benchmarks\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"tiny/tp=2\""), std::string::npos);
  EXPECT_NE(json.find("\"real_time\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  for (const Stage s : kAllStages) {
    EXPECT_NE(json.find(std::string("\"stage_totals/") + stage_name(s) + "\""),
              std::string::npos)
        << stage_name(s);
  }
}

TEST(SweepRunnerTest, HonoursPerJobStageMask) {
  SweepOptions opts;
  opts.jobs = 2;
  opts.progress = false;
  FlowOptions base;
  auto jobs = SweepRunner::grid({test::tiny_profile(34)}, {0.0, 2.0}, base,
                                StageMask::all().without(Stage::kSta).without(
                                    Stage::kExtract));
  const SweepReport report = SweepRunner(opts).run(lib(), std::move(jobs));
  for (const auto& cell : report.cells) {
    EXPECT_FALSE(cell.result.sta.worst.valid) << cell.job.label;
    EXPECT_FALSE(cell.result.timings.stage_ran(Stage::kSta));
    EXPECT_TRUE(cell.result.timings.stage_ran(Stage::kEco));
    EXPECT_GT(cell.result.saf_patterns, 0) << cell.job.label;
  }
  EXPECT_DOUBLE_EQ(report.stage_total_ms[static_cast<int>(Stage::kSta)], 0.0);
}

}  // namespace
}  // namespace tpi
