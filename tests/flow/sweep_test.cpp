// SweepRunner tests: deterministic parallel execution of the paper's
// (circuit x tp_percent) grid. The load-bearing property is that results
// are bit-identical at any job count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../common/test_circuits.hpp"
#include "flow/sweep.hpp"

namespace tpi {
namespace {

using test::lib;

std::vector<SweepJob> tiny_grid() {
  return SweepRunner::grid({test::tiny_profile(31), test::tiny_profile(32)},
                           {0.0, 2.0, 5.0}, FlowOptions{}, StageMask::all());
}

TEST(SweepRunnerTest, GridEnumeratesCircuitMajorWithLabels) {
  const auto jobs = tiny_grid();
  ASSERT_EQ(jobs.size(), 6u);
  EXPECT_EQ(jobs[0].label, "tiny/tp=0");
  EXPECT_EQ(jobs[1].label, "tiny/tp=2");
  EXPECT_EQ(jobs[2].label, "tiny/tp=5");
  EXPECT_DOUBLE_EQ(jobs[1].options.tp_percent, 2.0);
  EXPECT_EQ(jobs[3].profile.seed, test::tiny_profile(32).seed);
  EXPECT_EQ(jobs[0].stages, StageMask::all());
}

TEST(SweepRunnerTest, EffectiveJobsClampsToAtLeastOne) {
  EXPECT_GE(SweepRunner(SweepOptions{}).effective_jobs(), 1);
  SweepOptions two;
  two.jobs = 2;
  EXPECT_EQ(SweepRunner(two).effective_jobs(), 2);
}

// The acceptance property: same seeds => bit-identical FlowResult for every
// grid cell, regardless of how many workers executed the sweep.
TEST(SweepRunnerTest, ParallelMatchesSerialBitExactly) {
  SweepOptions serial_opts;
  serial_opts.jobs = 1;
  serial_opts.progress = false;
  SweepOptions parallel_opts;
  parallel_opts.jobs = 4;
  parallel_opts.progress = false;

  const SweepReport serial = SweepRunner(serial_opts).run(lib(), tiny_grid());
  const SweepReport parallel = SweepRunner(parallel_opts).run(lib(), tiny_grid());

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  EXPECT_EQ(serial.jobs, 1);
  EXPECT_EQ(parallel.jobs, 4);
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const FlowResult& a = serial.cells[i].result;
    const FlowResult& b = parallel.cells[i].result;
    SCOPED_TRACE(serial.cells[i].job.label);
    EXPECT_EQ(serial.cells[i].job.label, parallel.cells[i].job.label);
    EXPECT_EQ(a.num_test_points, b.num_test_points);
    EXPECT_EQ(a.num_ffs, b.num_ffs);
    EXPECT_EQ(a.num_chains, b.num_chains);
    EXPECT_EQ(a.num_faults, b.num_faults);
    EXPECT_EQ(a.saf_patterns, b.saf_patterns);
    EXPECT_EQ(a.tdv_bits, b.tdv_bits);
    EXPECT_EQ(a.num_cells, b.num_cells);
    EXPECT_DOUBLE_EQ(a.fault_coverage_pct, b.fault_coverage_pct);
    EXPECT_DOUBLE_EQ(a.scan_wire_length_um, b.scan_wire_length_um);
    EXPECT_DOUBLE_EQ(a.wire_length_um, b.wire_length_um);
    EXPECT_DOUBLE_EQ(a.chip_area_um2, b.chip_area_um2);
    EXPECT_DOUBLE_EQ(a.core_area_um2, b.core_area_um2);
    EXPECT_DOUBLE_EQ(a.sta.worst.t_cp_ps, b.sta.worst.t_cp_ps);
  }
}

// The deterministic metrics snapshot merged into the report must be
// bit-identical at any job count: exactly what the TPI_BENCH_JSON
// "metrics" key promises.
TEST(SweepRunnerTest, MergedMetricsDeterministicAcrossJobCounts) {
  SweepOptions serial_opts;
  serial_opts.jobs = 1;
  serial_opts.progress = false;
  SweepOptions parallel_opts;
  parallel_opts.jobs = 4;
  parallel_opts.progress = false;

  const SweepReport serial = SweepRunner(serial_opts).run(lib(), tiny_grid());
  const SweepReport parallel = SweepRunner(parallel_opts).run(lib(), tiny_grid());

  const std::string a = serial.metrics.to_json(MetricsSnapshot::kNoRuntime);
  const std::string b = parallel.metrics.to_json(MetricsSnapshot::kNoRuntime);
  EXPECT_EQ(a, b);
  // The merge actually picked up the per-layer counters.
  for (const char* name :
       {"atpg.sim.faults_graded", "atpg.podem.calls", "flow.stages_run",
        "placement.global_iterations", "routing.net_length_um", "sta.runs",
        "sim.good_sweeps", "designdb.view_hits", "designdb.rebuilds"}) {
    EXPECT_NE(serial.metrics.find(name), nullptr) << name;
    EXPECT_NE(a.find(name), std::string::npos) << name;
  }
  // Runtime ("rt.*") metrics never leak into the deterministic serialisation.
  EXPECT_EQ(a.find("\"rt."), std::string::npos);
}

TEST(SweepRunnerTest, ReportAggregatesStageTotals) {
  SweepOptions opts;
  opts.jobs = 2;
  opts.progress = false;
  const SweepReport report = SweepRunner(opts).run(lib(), tiny_grid());

  EXPECT_GT(report.wall_ms, 0.0);
  EXPECT_GE(report.cpu_ms, report.wall_ms * 0.5);  // sanity, not a perf claim
  double sum = 0.0;
  for (const double ms : report.stage_total_ms) sum += ms;
  EXPECT_GT(sum, 0.0);
  // Stage totals are the sum of the per-cell stage timings.
  double cell_sum = 0.0;
  for (const auto& cell : report.cells) cell_sum += cell.result.timings.total_ms();
  EXPECT_NEAR(sum, cell_sum, 1e-6);
}

TEST(SweepRunnerTest, JsonReportContainsCellsAndStageTotals) {
  SweepOptions opts;
  opts.jobs = 1;
  opts.progress = false;
  FlowOptions base;
  const auto jobs =
      SweepRunner::grid({test::tiny_profile(33)}, {2.0}, base,
                        StageMask::all().without(Stage::kReorderAtpg));
  const SweepReport report = SweepRunner(opts).run(lib(), jobs);
  const std::string json = report.to_json();

  EXPECT_NE(json.find("\"context\""), std::string::npos);
  EXPECT_NE(json.find("\"benchmarks\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"tiny/tp=2\""), std::string::npos);
  EXPECT_NE(json.find("\"real_time\""), std::string::npos);
  EXPECT_NE(json.find("\"stages\""), std::string::npos);
  for (const Stage s : kAllStages) {
    EXPECT_NE(json.find(std::string("\"stage_totals/") + stage_name(s) + "\""),
              std::string::npos)
        << stage_name(s);
  }
}

TEST(SweepRunnerTest, HonoursPerJobStageMask) {
  SweepOptions opts;
  opts.jobs = 2;
  opts.progress = false;
  FlowOptions base;
  auto jobs = SweepRunner::grid({test::tiny_profile(34)}, {0.0, 2.0}, base,
                                StageMask::all().without(Stage::kSta).without(
                                    Stage::kExtract));
  const SweepReport report = SweepRunner(opts).run(lib(), std::move(jobs));
  for (const auto& cell : report.cells) {
    EXPECT_FALSE(cell.result.sta.worst.valid) << cell.job.label;
    EXPECT_FALSE(cell.result.timings.stage_ran(Stage::kSta));
    EXPECT_TRUE(cell.result.timings.stage_ran(Stage::kEco));
    EXPECT_GT(cell.result.saf_patterns, 0) << cell.job.label;
  }
  EXPECT_DOUBLE_EQ(report.stage_total_ms[static_cast<int>(Stage::kSta)], 0.0);
}

}  // namespace
}  // namespace tpi
