#include "flow/flow.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"

namespace tpi {
namespace {

using test::lib;

// End-to-end flow properties, driven through FlowEngine + StageMask (the
// deprecated run_flow()/run_atpg shims have their own compat pins in
// flow_engine_test.cpp).
constexpr StageMask kNoAtpg = StageMask::all().without(Stage::kReorderAtpg);
constexpr StageMask kLayoutOnly =
    StageMask::all().without(Stage::kReorderAtpg).without(Stage::kExtract).without(Stage::kSta);

FlowResult run_engine(const CircuitProfile& p, const FlowOptions& opts,
                      StageMask stages = StageMask::all()) {
  FlowEngine engine(lib(), p, opts);
  return engine.run(stages);
}

FlowResult run_tiny(double tp_percent, StageMask stages = StageMask::all(),
                    std::uint64_t seed = 4242) {
  FlowOptions opts;
  opts.tp_percent = tp_percent;
  return run_engine(test::tiny_profile(seed), opts, stages);
}

TEST(FlowTest, PopulatesAllTableFields) {
  const FlowResult r = run_tiny(2.0);
  // Table 1 fields.
  EXPECT_GT(r.num_ffs, 0);
  EXPECT_GT(r.num_chains, 0);
  EXPECT_GT(r.max_chain_length, 0);
  EXPECT_GT(r.num_faults, 0);
  EXPECT_GT(r.fault_coverage_pct, 50.0);
  EXPECT_GE(r.fault_efficiency_pct, r.fault_coverage_pct);
  EXPECT_GT(r.saf_patterns, 0);
  EXPECT_EQ(r.tdv_bits,
            test_data_volume(r.num_chains, r.max_chain_length, r.saf_patterns));
  EXPECT_EQ(r.tat_cycles, test_application_time(r.max_chain_length, r.saf_patterns));
  // Table 2 fields.
  EXPECT_GT(r.num_cells, 0);
  EXPECT_GT(r.num_rows, 0);
  EXPECT_GT(r.core_area_um2, 0.0);
  EXPECT_GT(r.chip_area_um2, r.core_area_um2);
  EXPECT_GT(r.wire_length_um, 0.0);
  EXPECT_GT(r.filler_area_pct, 0.0);
  // Table 3 fields.
  ASSERT_TRUE(r.sta.worst.valid);
  EXPECT_GT(r.sta.worst.t_cp_ps, 0.0);
}

TEST(FlowTest, TestPointCountFollowsPercentage) {
  const CircuitProfile p = test::tiny_profile(4242);
  // tiny profile has 24 FFs: 10% -> 2 TSFFs (rounded), and #FF grows.
  const FlowResult base = run_tiny(0.0, kNoAtpg);
  const FlowResult tp = run_tiny(10.0, kNoAtpg);
  EXPECT_EQ(base.num_test_points, 0);
  EXPECT_EQ(tp.num_test_points, static_cast<int>(std::lround(0.10 * p.num_ffs)));
  EXPECT_EQ(tp.num_ffs, base.num_ffs + tp.num_test_points);
}

TEST(FlowTest, AreaGrowsWithTestPoints) {
  const FlowResult base = run_tiny(0.0, kNoAtpg);
  const FlowResult tp = run_tiny(20.0, kNoAtpg);  // exaggerate for a tiny circuit
  EXPECT_GT(tp.num_cells, base.num_cells);
  EXPECT_GE(tp.core_area_um2, base.core_area_um2);
}

TEST(FlowTest, DeterministicEndToEnd) {
  const FlowResult a = run_tiny(5.0);
  const FlowResult b = run_tiny(5.0);
  EXPECT_EQ(a.saf_patterns, b.saf_patterns);
  EXPECT_DOUBLE_EQ(a.wire_length_um, b.wire_length_um);
  EXPECT_DOUBLE_EQ(a.sta.worst.t_cp_ps, b.sta.worst.t_cp_ps);
}

TEST(FlowTest, RowUtilizationNearTarget) {
  const FlowResult r = run_tiny(0.0, kNoAtpg);
  // tiny profile targets 90%; fillers occupy the rest.
  EXPECT_NEAR(r.row_utilization_pct + r.filler_area_pct, 100.0, 0.5);
  EXPECT_NEAR(r.row_utilization_pct, 90.0, 5.0);
}

TEST(FlowTest, SkipsAtpgAndStaWhenMaskedOff) {
  const FlowResult r = run_tiny(0.0, kLayoutOnly, /*seed=*/11);
  EXPECT_EQ(r.saf_patterns, 0);
  EXPECT_FALSE(r.sta.worst.valid);
  EXPECT_GT(r.num_cells, 0);  // layout still ran
}

TEST(FlowTest, TimingDrivenTpiAvoidsCriticalNets) {
  const CircuitProfile p = test::tiny_profile(12);
  FlowOptions normal;
  normal.tp_percent = 12.0;
  FlowOptions timing = normal;
  timing.timing_driven_tpi = true;
  timing.timing_exclude_slack_ps = 600.0;
  const FlowResult a = run_engine(p, normal, kNoAtpg);
  const FlowResult b = run_engine(p, timing, kNoAtpg);
  ASSERT_TRUE(a.sta.worst.valid && b.sta.worst.valid);
  // Timing-driven TPI keeps test points off small-slack paths; the
  // resulting critical path carries no test points.
  EXPECT_EQ(b.sta.worst.test_points_on_path, 0);
  EXPECT_GT(b.num_test_points, 0);
}

TEST(FlowTest, ScanReorderShortensScanWires) {
  const CircuitProfile p = test::small_profile(77);
  FlowOptions ordered;
  FlowOptions unordered = ordered;
  unordered.layout_driven_reorder = false;
  const FlowResult a = run_engine(p, ordered, kLayoutOnly);
  const FlowResult b = run_engine(p, unordered, kLayoutOnly);
  EXPECT_LT(a.scan_wire_length_um, b.scan_wire_length_um);
}

TEST(FlowTest, RunsOnExternalNetlist) {
  // The flow must accept any netlist, not only generated ones.
  auto nl = generate_circuit(lib(), test::tiny_profile(13));
  CircuitProfile p = test::tiny_profile(13);
  FlowOptions opts;
  opts.tp_percent = 4.0;
  FlowEngine engine(*nl, p, opts);
  const FlowResult r = engine.run(kNoAtpg);
  EXPECT_GT(r.num_cells, 0);
  EXPECT_TRUE(nl->validate().empty()) << nl->validate();
}

}  // namespace
}  // namespace tpi
