// FlowEngine stage-model tests: observer callbacks, stage masks, per-stage
// timings, and equivalence with the legacy run_flow_on() wrapper.
#include <gtest/gtest.h>

#include <vector>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"
#include "flow/flow.hpp"
#include "flow/trace_observer.hpp"

namespace tpi {
namespace {

using test::lib;

class RecordingObserver : public FlowObserver {
 public:
  void on_stage_begin(const StageEvent& ev) override { begins.push_back(ev.stage); }
  void on_stage_end(const StageEvent& ev) override {
    ends.push_back(ev.stage);
    wall_ms.push_back(ev.wall_ms);
    cells_at_end.push_back(ev.num_cells);
  }
  std::vector<Stage> begins, ends;
  std::vector<double> wall_ms;
  std::vector<std::size_t> cells_at_end;
};

TEST(StageMaskTest, NamedStageAlgebra) {
  EXPECT_TRUE(StageMask::all().has(Stage::kSta));
  EXPECT_FALSE(StageMask::none().has(Stage::kTpiScan));
  EXPECT_TRUE(StageMask::none().empty());

  const StageMask m = StageMask::all().without(Stage::kReorderAtpg);
  EXPECT_FALSE(m.has(Stage::kReorderAtpg));
  EXPECT_TRUE(m.has(Stage::kEco));
  EXPECT_EQ(m.with(Stage::kReorderAtpg), StageMask::all());

  const StageMask upto = StageMask::through(Stage::kFloorplanPlace);
  EXPECT_TRUE(upto.has(Stage::kTpiScan));
  EXPECT_TRUE(upto.has(Stage::kFloorplanPlace));
  EXPECT_FALSE(upto.has(Stage::kReorderAtpg));

  EXPECT_EQ(StageMask::all().to_string(),
            "tpi_scan|floorplan_place|reorder_atpg|eco|extract|sta");
  EXPECT_EQ(StageMask::none().to_string(), "none");
}

TEST(StageMaskTest, StageNamesRoundTrip) {
  for (const Stage s : kAllStages) {
    const auto parsed = stage_from_name(stage_name(s));
    ASSERT_TRUE(parsed.has_value()) << stage_name(s);
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(stage_from_name("no_such_stage").has_value());
}

TEST(StageMaskTest, LegacyBooleansMapOntoMask) {
  FlowOptions opts;
  EXPECT_EQ(stage_mask_from(opts), StageMask::all());
  opts.run_atpg = false;
  EXPECT_EQ(stage_mask_from(opts), StageMask::all().without(Stage::kReorderAtpg));
  opts.run_sta = false;
  EXPECT_EQ(stage_mask_from(opts), StageMask::all()
                                       .without(Stage::kReorderAtpg)
                                       .without(Stage::kExtract)
                                       .without(Stage::kSta));
  opts.run_atpg = true;
  opts.run_sta = true;
  opts.verify = true;
  EXPECT_EQ(stage_mask_from(opts), StageMask::all().with(Stage::kVerify));
  EXPECT_FALSE(StageMask::all().has(Stage::kVerify));  // verify is opt-in
}

TEST(FlowEngineTest, ObserverSeesAllSixStagesInOrder) {
  FlowOptions opts;
  opts.tp_percent = 5.0;
  FlowEngine engine(lib(), test::tiny_profile(21), opts);
  RecordingObserver obs;
  engine.set_observer(&obs);
  engine.run();

  // run() defaults to StageMask::all() — the six paper stages; the opt-in
  // verify stage stays off.
  std::vector<Stage> expected;
  for (const Stage s : kAllStages) {
    if (StageMask::all().has(s)) expected.push_back(s);
  }
  EXPECT_EQ(expected.size(), static_cast<std::size_t>(kNumFlowStages));
  EXPECT_EQ(obs.begins, expected);
  EXPECT_EQ(obs.ends, expected);
  for (const double ms : obs.wall_ms) EXPECT_GE(ms, 0.0);
  // Cell count only grows along the flow (TPI, scan, buffers, CTS, fillers).
  for (std::size_t i = 1; i < obs.cells_at_end.size(); ++i) {
    EXPECT_GE(obs.cells_at_end[i], obs.cells_at_end[i - 1]);
  }
}

TEST(FlowEngineTest, RecordsPerStageTimings) {
  FlowOptions opts;
  opts.tp_percent = 5.0;
  FlowEngine engine(lib(), test::tiny_profile(22), opts);
  const FlowResult& r = engine.run();
  for (const Stage s : kAllStages) {
    EXPECT_EQ(r.timings.stage_ran(s), StageMask::all().has(s)) << stage_name(s);
    EXPECT_GE(r.timings[s], 0.0);
  }
  EXPECT_GT(r.timings.total_ms(), 0.0);
}

TEST(FlowEngineTest, PartialFlowStopsAtPlacement) {
  FlowEngine engine(lib(), test::tiny_profile(23), FlowOptions{});
  const FlowResult& r = engine.run(StageMask::through(Stage::kFloorplanPlace));
  EXPECT_TRUE(engine.stage_ran(Stage::kFloorplanPlace));
  EXPECT_FALSE(engine.stage_ran(Stage::kEco));
  EXPECT_NE(engine.floorplan(), nullptr);
  EXPECT_NE(engine.placement(), nullptr);
  EXPECT_EQ(engine.routes(), nullptr);
  EXPECT_EQ(r.num_cells, 0);  // Table 2 fields are produced by the eco stage
  EXPECT_FALSE(r.sta.worst.valid);
  EXPECT_FALSE(r.timings.stage_ran(Stage::kEco));
}

TEST(FlowEngineTest, SkipsStagesWithMissingPrerequisites) {
  // eco masked off: extract and sta have no routes to work with and must
  // skip rather than crash.
  FlowEngine engine(lib(), test::tiny_profile(24), FlowOptions{});
  const StageMask mask = StageMask::all().without(Stage::kEco);
  const FlowResult& r = engine.run(mask);
  EXPECT_FALSE(engine.stage_ran(Stage::kEco));
  EXPECT_FALSE(engine.stage_ran(Stage::kExtract));
  EXPECT_FALSE(engine.stage_ran(Stage::kSta));
  EXPECT_TRUE(engine.stage_ran(Stage::kReorderAtpg));
  EXPECT_GT(r.saf_patterns, 0);  // ATPG ran on the placed netlist
}

TEST(FlowEngineTest, StagesCanBeRunOneAtATime) {
  FlowOptions opts;
  opts.tp_percent = 5.0;
  FlowEngine engine(lib(), test::tiny_profile(25), opts);
  EXPECT_FALSE(engine.run_stage(Stage::kEco));  // prerequisites missing
  EXPECT_TRUE(engine.run_stage(Stage::kTpiScan));
  EXPECT_FALSE(engine.run_stage(Stage::kTpiScan));  // already ran
  EXPECT_TRUE(engine.run_stage(Stage::kFloorplanPlace));
  EXPECT_TRUE(engine.run_stage(Stage::kEco));
  EXPECT_TRUE(engine.run_stage(Stage::kExtract));
  EXPECT_TRUE(engine.run_stage(Stage::kSta));
  EXPECT_TRUE(engine.result().sta.worst.valid);
}

TEST(FlowEngineTest, ResultCarriesMetricsSnapshot) {
  FlowOptions opts;
  opts.tp_percent = 5.0;
  FlowEngine engine(lib(), test::tiny_profile(28), opts);
  const FlowResult& r = engine.run();
  ASSERT_FALSE(r.metrics.empty());
  const MetricValue* stages = r.metrics.find("flow.stages_run");
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(stages->count, 6u);
  for (const char* name : {"atpg.podem.calls", "atpg.sim.faults_graded",
                           "placement.global_iterations", "routing.nets",
                           "routing.net_length_um", "sta.runs", "sim.good_sweeps"}) {
    EXPECT_NE(r.metrics.find(name), nullptr) << name;
  }
  // Per-engine isolation: a second engine starts from an empty registry.
  FlowEngine fresh(lib(), test::tiny_profile(28), opts);
  fresh.run(StageMask::through(Stage::kTpiScan));
  const MetricValue* fresh_stages = fresh.result().metrics.find("flow.stages_run");
  ASSERT_NE(fresh_stages, nullptr);
  EXPECT_EQ(fresh_stages->count, 1u);
}

TEST(FlowEngineTest, TracingObserverCountsStageBoundaries) {
  FlowOptions opts;
  opts.tp_percent = 2.0;
  FlowEngine engine(lib(), test::tiny_profile(29), opts);
  TracingFlowObserver obs;
  engine.set_observer(&obs);
  engine.run();
  EXPECT_EQ(obs.stages_begun(), 6u);
  EXPECT_EQ(obs.stages_ended(), 6u);
}

// The opt-in verify stage: the default flow's transforms must be mission-
// mode equivalent to the generated netlist, and every claimed ATPG fault
// detection must replay.
TEST(FlowEngineTest, VerifyStageConfirmsFlowAndReplay) {
  FlowOptions opts;
  opts.tp_percent = 5.0;
  opts.verify = true;
  FlowEngine engine(lib(), test::tiny_profile(30), opts);
  const FlowResult& r = engine.run(stage_mask_from(opts));
  EXPECT_TRUE(engine.stage_ran(Stage::kVerify));
  ASSERT_TRUE(r.verify.ran);
  EXPECT_TRUE(r.verify.ok()) << r.verify.error;
  EXPECT_TRUE(r.verify.equivalent);
  EXPECT_GT(r.verify.matched_pos, 0);
  EXPECT_GT(r.verify.frames_simulated, 0);
  EXPECT_TRUE(r.verify.replay_ran);
  EXPECT_GT(r.verify.replay_claimed, 0);
  EXPECT_EQ(r.verify.replay_confirmed, r.verify.replay_claimed);

  const MetricValue* stages = r.metrics.find("flow.stages_run");
  ASSERT_NE(stages, nullptr);
  EXPECT_EQ(stages->count, 7u);
  for (const char* name : {"verify.miter.matched_pos", "verify.equiv.frames",
                           "verify.equiv.mismatches", "verify.replay.checked",
                           "verify.replay.confirmed", "verify.replay.failures"}) {
    EXPECT_NE(r.metrics.find(name), nullptr) << name;
  }
  const MetricValue* mismatches = r.metrics.find("verify.equiv.mismatches");
  ASSERT_NE(mismatches, nullptr);
  EXPECT_EQ(mismatches->count, 0u);
}

// Without FlowOptions::verify no pre-transform snapshot exists, so the
// stage must skip instead of diffing the netlist against itself.
TEST(FlowEngineTest, VerifyStageRequiresSnapshot) {
  FlowEngine engine(lib(), test::tiny_profile(31), FlowOptions{});
  EXPECT_TRUE(engine.run_stage(Stage::kTpiScan));
  EXPECT_FALSE(engine.run_stage(Stage::kVerify));
  EXPECT_FALSE(engine.result().verify.ran);
}

// The legacy wrappers and the staged engine must produce bit-identical
// results for the same profile and options (the wrapper IS the engine, but
// this pins the compat mapping of run_atpg/run_sta onto StageMask).
TEST(FlowEngineTest, WrapperMatchesEngineBitExactly) {
  for (const bool with_atpg : {false, true}) {
    FlowOptions opts;
    opts.tp_percent = 10.0;
    opts.run_atpg = with_atpg;
    const FlowResult a = run_flow(lib(), test::tiny_profile(26), opts);

    FlowEngine engine(lib(), test::tiny_profile(26), opts);
    const FlowResult& b = engine.run(stage_mask_from(opts));

    EXPECT_EQ(a.num_test_points, b.num_test_points);
    EXPECT_EQ(a.num_ffs, b.num_ffs);
    EXPECT_EQ(a.num_chains, b.num_chains);
    EXPECT_EQ(a.saf_patterns, b.saf_patterns);
    EXPECT_EQ(a.num_cells, b.num_cells);
    EXPECT_DOUBLE_EQ(a.scan_wire_length_um, b.scan_wire_length_um);
    EXPECT_DOUBLE_EQ(a.wire_length_um, b.wire_length_um);
    EXPECT_DOUBLE_EQ(a.chip_area_um2, b.chip_area_um2);
    EXPECT_DOUBLE_EQ(a.sta.worst.t_cp_ps, b.sta.worst.t_cp_ps);
  }
}

// Masking off reorder_atpg must reproduce the legacy run_atpg=false flow
// exactly: chains still stitched (they shape routing), ATPG skipped.
TEST(FlowEngineTest, MaskedAtpgKeepsScanStitchingIdentical) {
  FlowOptions legacy;
  legacy.tp_percent = 5.0;
  legacy.run_atpg = false;
  const FlowResult a = run_flow(lib(), test::tiny_profile(27), legacy);

  FlowOptions opts;
  opts.tp_percent = 5.0;
  FlowEngine engine(lib(), test::tiny_profile(27), opts);
  const FlowResult& b = engine.run(StageMask::all().without(Stage::kReorderAtpg));

  EXPECT_EQ(b.saf_patterns, 0);
  EXPECT_GT(b.num_chains, 0);
  EXPECT_EQ(a.num_chains, b.num_chains);
  EXPECT_DOUBLE_EQ(a.scan_wire_length_um, b.scan_wire_length_um);
  EXPECT_DOUBLE_EQ(a.wire_length_um, b.wire_length_um);
  EXPECT_DOUBLE_EQ(a.sta.worst.t_cp_ps, b.sta.worst.t_cp_ps);
}

}  // namespace
}  // namespace tpi
