// FlowConfig: the single validated site for TPI_* environment parsing,
// JSON job configs, and the precedence contract (explicit JSON > process
// env > compiled defaults). The AtpgJobsExplicitConfigBeatsEnv test is the
// regression for the historical bug where TPI_ATPG_JOBS silently
// overwrote per-job AtpgOptions::jobs at run time.
#include "flow/flow_config.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "../common/test_circuits.hpp"
#include "flow/flow.hpp"

namespace tpi {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      ::setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> old_;
};

TEST(FlowConfigTest, FromEnvReadsEveryVariable) {
  const ScopedEnv e1("TPI_BENCH_SCALE", "0.25");
  const ScopedEnv e2("TPI_BENCH_JOBS", "3");
  const ScopedEnv e3("TPI_ATPG_JOBS", "2");
  const ScopedEnv e4("TPI_BENCH_JSON", "out.json");
  const ScopedEnv e5("TPI_TRACE", "trace.json");
  const ScopedEnv e6("TPI_LOG_LEVEL", "error");
  const ScopedEnv e7("TPI_FUZZ_SEED", "0xABCD");
  const ScopedEnv e8("TPI_FUZZ_ITERS", "17");
  const ScopedEnv e9("TPI_SERVER_SOCKET", "/tmp/x.sock");
  const ScopedEnv e10("TPI_SERVER_CACHE_MB", "64");

  const FlowConfig cfg = FlowConfig::from_env();
  EXPECT_DOUBLE_EQ(cfg.scale, 0.25);
  EXPECT_EQ(cfg.bench_jobs, 3);
  EXPECT_EQ(cfg.effective_bench_jobs(), 3);
  EXPECT_EQ(cfg.options.atpg.jobs, 2);
  EXPECT_EQ(cfg.bench_json, "out.json");
  EXPECT_EQ(cfg.trace_path, "trace.json");
  EXPECT_EQ(cfg.log_level, LogLevel::kError);
  EXPECT_EQ(cfg.fuzz_seed, 0xABCDu);
  EXPECT_EQ(cfg.fuzz_options().iterations, 17);
  EXPECT_EQ(cfg.server_socket, "/tmp/x.sock");
  EXPECT_EQ(cfg.server_cache_mb, 64);
}

TEST(FlowConfigTest, FromEnvReadsTelemetryPaths) {
  const ScopedEnv e1("TPI_TRACE_DIR", "/tmp/traces");
  const ScopedEnv e2("TPI_LEDGER", "/tmp/runs.jsonl");
  const FlowConfig cfg = FlowConfig::from_env();
  EXPECT_EQ(cfg.trace_dir, "/tmp/traces");
  EXPECT_EQ(cfg.ledger, "/tmp/runs.jsonl");

  const ScopedEnv e3("TPI_TRACE_DIR", nullptr);
  const ScopedEnv e4("TPI_LEDGER", nullptr);
  FlowConfig base;
  base.trace_dir = "kept";
  base.ledger = "kept.jsonl";
  const FlowConfig inherited = FlowConfig::from_env(base);
  EXPECT_EQ(inherited.trace_dir, "kept");
  EXPECT_EQ(inherited.ledger, "kept.jsonl");
}

TEST(FlowConfigTest, TelemetryKeysParseAndRoundTrip) {
  const FlowConfig base;
  FlowConfig cfg;
  std::string error;
  ASSERT_TRUE(FlowConfig::from_json(
      "{\"record_trace\": true, \"trace_dir\": \"traces\", "
      "\"ledger\": \"runs.jsonl\"}",
      base, cfg, &error))
      << error;
  EXPECT_TRUE(cfg.record_trace);
  EXPECT_EQ(cfg.trace_dir, "traces");
  EXPECT_EQ(cfg.ledger, "runs.jsonl");

  FlowConfig back;
  ASSERT_TRUE(FlowConfig::from_json(cfg.to_json(), FlowConfig{}, back, &error)) << error;
  EXPECT_TRUE(back.record_trace);
  EXPECT_EQ(back.trace_dir, cfg.trace_dir);
  EXPECT_EQ(back.ledger, cfg.ledger);

  // Defaults stay off/empty and serialise away entirely.
  const FlowConfig quiet;
  EXPECT_FALSE(quiet.record_trace);
  const std::string json = quiet.to_json();
  EXPECT_EQ(json.find("record_trace"), std::string::npos);
  EXPECT_EQ(json.find("trace_dir"), std::string::npos);
  EXPECT_EQ(json.find("ledger"), std::string::npos);

  EXPECT_FALSE(FlowConfig::from_json("{\"record_trace\": 1}", base, cfg, &error));
  EXPECT_FALSE(FlowConfig::from_json("{\"trace_dir\": 7}", base, cfg, &error));
}

TEST(FlowConfigTest, FromEnvKeepsBaseForUnsetAndInvalidValues) {
  const ScopedEnv e1("TPI_BENCH_SCALE", "banana");
  const ScopedEnv e2("TPI_BENCH_JOBS", "-4");
  const ScopedEnv e3("TPI_ATPG_JOBS", nullptr);
  const ScopedEnv e4("TPI_LOG_LEVEL", "shouty");
  const ScopedEnv e5("TPI_FUZZ_ITERS", "0");

  FlowConfig base;
  base.scale = 0.5;
  base.bench_jobs = 7;
  base.options.atpg.jobs = 5;
  base.fuzz_iters = 33;
  const FlowConfig cfg = FlowConfig::from_env(base);
  EXPECT_DOUBLE_EQ(cfg.scale, 0.5);
  EXPECT_EQ(cfg.bench_jobs, 7);
  EXPECT_EQ(cfg.options.atpg.jobs, 5);
  EXPECT_EQ(cfg.log_level, base.log_level);
  EXPECT_EQ(cfg.fuzz_iters, 33);
}

TEST(FlowConfigTest, BenchVerboseAliasOnlyUpgradesFallback) {
  {
    const ScopedEnv v("TPI_BENCH_VERBOSE", "1");
    const ScopedEnv l("TPI_LOG_LEVEL", nullptr);
    EXPECT_EQ(FlowConfig::from_env().log_level, LogLevel::kInfo);
  }
  {
    const ScopedEnv v("TPI_BENCH_VERBOSE", "1");
    const ScopedEnv l("TPI_LOG_LEVEL", "silent");
    EXPECT_EQ(FlowConfig::from_env().log_level, LogLevel::kSilent);
  }
}

TEST(FlowConfigTest, FromJsonLayersOverBase) {
  FlowConfig base;
  base.options.atpg.jobs = 3;
  base.scale = 0.5;
  FlowConfig cfg;
  std::string error;
  ASSERT_TRUE(FlowConfig::from_json(
      "{\"profile\": \"circuit1\", \"tp_percent\": 2.5, \"tpi_method\": \"scoap\", "
      "\"seed\": \"0xDEAD\", \"priority\": 4}",
      base, cfg, &error))
      << error;
  EXPECT_EQ(cfg.profile, "circuit1");
  EXPECT_DOUBLE_EQ(cfg.options.tp_percent, 2.5);
  EXPECT_EQ(cfg.options.tpi_method, TpiMethod::kScoap);
  EXPECT_EQ(cfg.options.seed, 0xDEADu);
  EXPECT_EQ(cfg.priority, 4);
  // Untouched keys keep the base layer.
  EXPECT_EQ(cfg.options.atpg.jobs, 3);
  EXPECT_DOUBLE_EQ(cfg.scale, 0.5);
}

// The multi-tenant isolation regression: an explicit per-job config must
// beat the process environment all the way into the ATPG kernel — the env
// is read once into the base config and never again at run time.
TEST(FlowConfigTest, AtpgJobsExplicitConfigBeatsEnv) {
  const ScopedEnv env_jobs("TPI_ATPG_JOBS", "3");
  const FlowConfig base = FlowConfig::from_env();
  ASSERT_EQ(base.options.atpg.jobs, 3);

  FlowConfig cfg;
  std::string error;
  ASSERT_TRUE(
      FlowConfig::from_json("{\"atpg_jobs\": 2, \"scale\": 0.01}", base, cfg, &error))
      << error;
  EXPECT_EQ(cfg.options.atpg.jobs, 2);

  // And the engine actually runs with the explicit value.
  FlowEngine engine(test::lib(), cfg);
  const FlowResult& res = engine.run(StageMask::through(Stage::kReorderAtpg));
  EXPECT_EQ(res.atpg.profile.jobs, 2);
}

TEST(FlowConfigTest, StagesParsing) {
  const FlowConfig base;
  FlowConfig cfg;
  std::string error;
  ASSERT_TRUE(FlowConfig::from_json("{\"stages\": \"all\"}", base, cfg, &error));
  EXPECT_EQ(cfg.stages, StageMask::all());
  ASSERT_TRUE(FlowConfig::from_json("{\"stages\": \"none\"}", base, cfg, &error));
  EXPECT_TRUE(cfg.stages.empty());
  ASSERT_TRUE(FlowConfig::from_json(
      "{\"stages\": [\"tpi_scan\", \"floorplan_place\", \"eco\"]}", base, cfg, &error));
  EXPECT_TRUE(cfg.stages.has(Stage::kTpiScan));
  EXPECT_TRUE(cfg.stages.has(Stage::kEco));
  EXPECT_FALSE(cfg.stages.has(Stage::kSta));
  EXPECT_FALSE(
      FlowConfig::from_json("{\"stages\": [\"warp_drive\"]}", base, cfg, &error));
  // verify: true opts into the stage on top of whatever mask is set.
  ASSERT_TRUE(FlowConfig::from_json("{\"verify\": true}", base, cfg, &error));
  EXPECT_TRUE(cfg.stages.has(Stage::kVerify));
  EXPECT_TRUE(cfg.options.verify);
}

TEST(FlowConfigTest, FaultModelAndAtSpeedKnobsParse) {
  const FlowConfig base;
  FlowConfig cfg;
  std::string error;
  ASSERT_TRUE(FlowConfig::from_json(
      "{\"fault_model\": \"transition\", \"at_speed\": true, "
      "\"server_queue_limit\": 8}",
      base, cfg, &error))
      << error;
  EXPECT_EQ(cfg.options.atpg.fault_model, FaultModel::kTransition);
  EXPECT_TRUE(cfg.options.at_speed_lbist);
  EXPECT_EQ(cfg.server_queue_limit, 8);

  ASSERT_TRUE(
      FlowConfig::from_json("{\"fault_model\": \"stuck_at\"}", base, cfg, &error));
  EXPECT_EQ(cfg.options.atpg.fault_model, FaultModel::kStuckAt);

  EXPECT_FALSE(FlowConfig::from_json("{\"fault_model\": \"bridging\"}", base, cfg, &error));
  EXPECT_FALSE(FlowConfig::from_json("{\"fault_model\": 1}", base, cfg, &error));
  EXPECT_FALSE(FlowConfig::from_json("{\"at_speed\": \"yes\"}", base, cfg, &error));
  EXPECT_FALSE(FlowConfig::from_json("{\"server_queue_limit\": -1}", base, cfg, &error));
}

TEST(FlowConfigTest, FaultModelKnobsRoundTripAndStayOffDefaultJson) {
  FlowConfig cfg;
  cfg.options.atpg.fault_model = FaultModel::kTransition;
  cfg.options.at_speed_lbist = true;
  cfg.server_queue_limit = 16;

  FlowConfig back;
  std::string error;
  ASSERT_TRUE(FlowConfig::from_json(cfg.to_json(), FlowConfig{}, back, &error)) << error;
  EXPECT_EQ(back.options.atpg.fault_model, FaultModel::kTransition);
  EXPECT_TRUE(back.options.at_speed_lbist);
  EXPECT_EQ(back.server_queue_limit, 16);

  // Defaults serialise away entirely: pre-existing configs keep their
  // serialised form, and with it their ledger config fingerprints.
  const std::string quiet = FlowConfig{}.to_json();
  EXPECT_EQ(quiet.find("fault_model"), std::string::npos);
  EXPECT_EQ(quiet.find("at_speed"), std::string::npos);
  EXPECT_EQ(quiet.find("server_queue_limit"), std::string::npos);
}

TEST(FlowConfigTest, FromEnvReadsFaultModelAndQueueLimit) {
  {
    const ScopedEnv e1("TPI_FAULT_MODEL", "transition");
    const ScopedEnv e2("TPI_SERVER_QUEUE_LIMIT", "32");
    const FlowConfig cfg = FlowConfig::from_env();
    EXPECT_EQ(cfg.options.atpg.fault_model, FaultModel::kTransition);
    EXPECT_EQ(cfg.server_queue_limit, 32);
  }
  {
    // An unknown spelling keeps the base model instead of failing the run.
    const ScopedEnv e1("TPI_FAULT_MODEL", "bridging");
    FlowConfig base;
    base.options.atpg.fault_model = FaultModel::kTransition;
    const FlowConfig cfg = FlowConfig::from_env(base);
    EXPECT_EQ(cfg.options.atpg.fault_model, FaultModel::kTransition);
  }
}

TEST(FlowConfigTest, RejectsUnknownKeysAndBadTypes) {
  const FlowConfig base;
  FlowConfig cfg;
  cfg.profile = "sentinel";
  std::string error;
  EXPECT_FALSE(FlowConfig::from_json("{\"proifle\": \"s38417\"}", base, cfg, &error));
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_FALSE(FlowConfig::from_json("{\"scale\": \"big\"}", base, cfg, &error));
  EXPECT_FALSE(FlowConfig::from_json("{\"scale\": -1}", base, cfg, &error));
  EXPECT_FALSE(FlowConfig::from_json("not json", base, cfg, &error));
  EXPECT_FALSE(FlowConfig::from_json("[1,2]", base, cfg, &error));
  // Failed parses leave the output untouched.
  EXPECT_EQ(cfg.profile, "sentinel");
}

TEST(FlowConfigTest, SocKnobsParseRoundTripAndReadEnv) {
  const FlowConfig base;
  FlowConfig cfg;
  std::string error;
  ASSERT_TRUE(FlowConfig::from_json(
      "{\"soc\": {\"cores\": 8, \"tam_width\": 16, \"schedule\": \"serial\"}}", base,
      cfg, &error))
      << error;
  EXPECT_EQ(cfg.soc.cores, 8);
  EXPECT_EQ(cfg.soc.tam_width, 16);
  EXPECT_EQ(cfg.soc.schedule, "serial");

  FlowConfig back;
  ASSERT_TRUE(FlowConfig::from_json(cfg.to_json(), FlowConfig{}, back, &error)) << error;
  EXPECT_EQ(back.soc, cfg.soc);

  // SOC mode off => the "soc" key never appears (ledger fingerprints and
  // baseline JSON of single-core configs stay byte-identical).
  EXPECT_EQ(FlowConfig{}.to_json().find("\"soc\""), std::string::npos);

  const ScopedEnv e1("TPI_SOC_CORES", "12");
  const ScopedEnv e2("TPI_SOC_TAM_WIDTH", "64");
  const ScopedEnv e3("TPI_SOC_SCHEDULE", "serial");
  const FlowConfig env = FlowConfig::from_env();
  EXPECT_EQ(env.soc.cores, 12);
  EXPECT_EQ(env.soc.tam_width, 64);
  EXPECT_EQ(env.soc.schedule, "serial");
  // Invalid env values warn and keep the base, like every other TPI_* knob.
  const ScopedEnv e4("TPI_SOC_CORES", "-3");
  const ScopedEnv e5("TPI_SOC_SCHEDULE", "greedy");
  const FlowConfig env2 = FlowConfig::from_env();
  EXPECT_EQ(env2.soc.cores, 0);
  EXPECT_EQ(env2.soc.schedule, "diagonal");
}

TEST(FlowConfigTest, RejectsMalformedSocBlocks) {
  const FlowConfig base;
  FlowConfig cfg;
  cfg.soc.cores = 77;  // sentinel: failed parses must not touch the output
  std::string error;
  EXPECT_FALSE(FlowConfig::from_json("{\"soc\": 3}", base, cfg, &error));
  EXPECT_NE(error.find("\"soc\""), std::string::npos);
  EXPECT_NE(error.find("expected an object"), std::string::npos);
  EXPECT_FALSE(FlowConfig::from_json("{\"soc\": {\"coers\": 4}}", base, cfg, &error));
  EXPECT_NE(error.find("unknown key \"coers\""), std::string::npos);
  EXPECT_FALSE(
      FlowConfig::from_json("{\"soc\": {\"cores\": \"four\"}}", base, cfg, &error));
  EXPECT_FALSE(FlowConfig::from_json("{\"soc\": {\"cores\": -1}}", base, cfg, &error));
  EXPECT_FALSE(
      FlowConfig::from_json("{\"soc\": {\"tam_width\": 0}}", base, cfg, &error));
  EXPECT_FALSE(
      FlowConfig::from_json("{\"soc\": {\"tam_width\": 1.5}}", base, cfg, &error));
  EXPECT_FALSE(
      FlowConfig::from_json("{\"soc\": {\"schedule\": \"greedy\"}}", base, cfg, &error));
  EXPECT_NE(error.find("\"diagonal\" or \"serial\""), std::string::npos);
  EXPECT_EQ(cfg.soc.cores, 77);
}

TEST(FlowConfigTest, ToJsonRoundTrips) {
  FlowConfig cfg;
  cfg.profile = "p26909";
  cfg.scale = 0.25;
  cfg.options.tp_percent = 3.0;
  cfg.options.tpi_method = TpiMethod::kCop;
  cfg.options.seed = 0x123456789ABCDEF0ull;
  cfg.options.atpg.jobs = 2;
  cfg.stages = StageMask::all().without(Stage::kSta);
  cfg.priority = -2;
  cfg.fuzz_iters = 5;

  FlowConfig back;
  std::string error;
  ASSERT_TRUE(FlowConfig::from_json(cfg.to_json(), FlowConfig{}, back, &error)) << error;
  EXPECT_EQ(back.profile, cfg.profile);
  EXPECT_DOUBLE_EQ(back.scale, cfg.scale);
  EXPECT_DOUBLE_EQ(back.options.tp_percent, cfg.options.tp_percent);
  EXPECT_EQ(back.options.tpi_method, cfg.options.tpi_method);
  EXPECT_EQ(back.options.seed, cfg.options.seed);
  EXPECT_EQ(back.options.atpg.jobs, cfg.options.atpg.jobs);
  EXPECT_EQ(back.stages, cfg.stages);
  EXPECT_EQ(back.priority, cfg.priority);
  EXPECT_EQ(back.fuzz_iters, cfg.fuzz_iters);
}

TEST(FlowConfigTest, ResolveProfileScalesAndKeepsPaperName) {
  FlowConfig cfg;
  cfg.profile = "s38417";
  cfg.scale = 0.1;
  CircuitProfile p;
  std::string error;
  ASSERT_TRUE(cfg.resolve_profile(p, &error)) << error;
  EXPECT_EQ(p.name, "s38417");
  EXPECT_LT(p.num_ffs, s38417_profile().num_ffs);

  cfg.profile = "nonesuch";
  EXPECT_FALSE(cfg.resolve_profile(p, &error));
  EXPECT_NE(error.find("nonesuch"), std::string::npos);
}

TEST(FlowConfigTest, EngineCtorRejectsUnknownProfile) {
  FlowConfig cfg;
  cfg.profile = "nonesuch";
  EXPECT_THROW(FlowEngine(test::lib(), cfg), std::invalid_argument);
}

}  // namespace
}  // namespace tpi
