#include "layout/floorplan.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"

namespace tpi {
namespace {

using test::lib;

TEST(FloorplanTest, CoreHoldsCellsAtTargetUtilization) {
  auto nl = generate_circuit(lib(), test::tiny_profile(61));
  FloorplanOptions opts;
  opts.target_row_utilization = 0.9;
  const Floorplan fp = make_floorplan(*nl, opts);
  const double cell_area = placeable_cell_area(*nl);
  const double row_area = fp.num_rows * fp.row_length_um * fp.row_height_um;
  EXPECT_GE(row_area, cell_area);                  // everything fits
  EXPECT_NEAR(cell_area / row_area, 0.9, 0.02);    // close to target
}

TEST(FloorplanTest, AspectRatioWithinPaperBounds) {
  // §4.3: "The aspect ratio of the core area is always between 0.9 and 1.1."
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    auto nl = generate_circuit(lib(), test::tiny_profile(seed));
    const Floorplan fp = make_floorplan(*nl, {});
    EXPECT_GE(fp.aspect_ratio(), 0.9);
    EXPECT_LE(fp.aspect_ratio(), 1.1);
  }
}

TEST(FloorplanTest, ChipIsSquareAndContainsCore) {
  auto nl = generate_circuit(lib(), test::tiny_profile(62));
  const Floorplan fp = make_floorplan(*nl, {});
  EXPECT_NEAR(fp.chip_box.width(), fp.chip_box.height(), 1e-9);  // forced square
  EXPECT_LE(fp.chip_box.lx, fp.core_box.lx);
  EXPECT_GE(fp.chip_box.hx, fp.core_box.hx);
  EXPECT_LE(fp.chip_box.ly, fp.core_box.ly);
  EXPECT_GE(fp.chip_box.hy, fp.core_box.hy);
  EXPECT_GT(fp.chip_area_um2(), fp.core_area_um2());
}

TEST(FloorplanTest, RowLengthIsSiteQuantised) {
  auto nl = generate_circuit(lib(), test::tiny_profile(63));
  const Floorplan fp = make_floorplan(*nl, {});
  const double sites = fp.row_length_um / fp.site_width_um;
  EXPECT_NEAR(sites, std::round(sites), 1e-9);
  EXPECT_EQ(fp.total_row_length_um(), fp.num_rows * fp.row_length_um);
}

TEST(FloorplanTest, LowerUtilizationGrowsCore) {
  auto nl = generate_circuit(lib(), test::tiny_profile(64));
  FloorplanOptions tight, loose;
  tight.target_row_utilization = 0.97;
  loose.target_row_utilization = 0.50;  // the paper's p26909 setting
  const Floorplan a = make_floorplan(*nl, tight);
  const Floorplan b = make_floorplan(*nl, loose);
  EXPECT_GT(b.core_area_um2(), 1.7 * a.core_area_um2());
}

TEST(FloorplanTest, MoreCellsMoreArea) {
  // Adding test points must grow the core nearly linearly (§4.3).
  auto nl = generate_circuit(lib(), test::tiny_profile(65));
  const Floorplan before = make_floorplan(*nl, {});
  const CellSpec* tsff = lib().by_name("TSFF_X1");
  for (int i = 0; i < 10; ++i) nl->add_cell(tsff, "tp" + std::to_string(i));
  const Floorplan after = make_floorplan(*nl, {});
  EXPECT_GT(after.core_area_um2(), before.core_area_um2());
  const double added = 10 * tsff->area_um2() / 0.97;
  EXPECT_NEAR(after.core_area_um2() - before.core_area_um2(), added,
              0.6 * added + 2 * after.row_length_um);  // quantisation slack
}

TEST(FloorplanTest, RowCoordinates) {
  auto nl = generate_circuit(lib(), test::tiny_profile(66));
  const Floorplan fp = make_floorplan(*nl, {});
  EXPECT_DOUBLE_EQ(fp.row_y(0), fp.core_box.ly);
  EXPECT_DOUBLE_EQ(fp.row_y(fp.num_rows) - fp.core_box.ly,
                   fp.num_rows * fp.row_height_um);
  EXPECT_EQ(fp.nearest_row(fp.core_box.ly - 100.0), 0);
  EXPECT_EQ(fp.nearest_row(fp.core_box.hy + 100.0), fp.num_rows - 1);
  EXPECT_EQ(fp.nearest_row(fp.row_y(2) + 0.1), 2);
}

}  // namespace
}  // namespace tpi
