#include "layout/svg.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"

namespace tpi {
namespace {

using test::lib;

TEST(SvgTest, RendersAllThreeStages) {
  auto nl = generate_circuit(lib(), test::tiny_profile(55));
  const Floorplan fp = make_floorplan(*nl, {});
  const Placement pl = place(*nl, fp, {});
  const RoutingResult routes = route(*nl, fp, pl);

  const std::string floorplan_svg =
      render_layout_svg(*nl, fp, nullptr, nullptr, LayoutStage::kFloorplan);
  const std::string placed_svg =
      render_layout_svg(*nl, fp, &pl, nullptr, LayoutStage::kPlacement);
  const std::string routed_svg =
      render_layout_svg(*nl, fp, &pl, &routes, LayoutStage::kRouted);

  for (const std::string* svg : {&floorplan_svg, &placed_svg, &routed_svg}) {
    EXPECT_NE(svg->find("<svg"), std::string::npos);
    EXPECT_NE(svg->find("</svg>"), std::string::npos);
  }
  // Placement adds cell rectangles; routing adds polylines.
  EXPECT_GT(placed_svg.size(), floorplan_svg.size());
  EXPECT_NE(routed_svg.find("polyline"), std::string::npos);
  EXPECT_EQ(floorplan_svg.find("polyline"), std::string::npos);
}

TEST(SvgTest, WritesFile) {
  auto nl = generate_circuit(lib(), test::tiny_profile(56));
  const Floorplan fp = make_floorplan(*nl, {});
  const std::string path = ::testing::TempDir() + "/fp.svg";
  EXPECT_TRUE(write_layout_svg(path, *nl, fp, nullptr, nullptr, LayoutStage::kFloorplan));
  EXPECT_FALSE(write_layout_svg("/nonexistent-dir/fp.svg", *nl, fp, nullptr, nullptr,
                                LayoutStage::kFloorplan));
}

}  // namespace
}  // namespace tpi
