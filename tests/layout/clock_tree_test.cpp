#include "layout/clock_tree.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"

namespace tpi {
namespace {

using test::lib;

struct CtsCircuit {
  std::unique_ptr<Netlist> nl;
  Floorplan fp;
  Placement pl;
  CtsReport report;
};

CtsCircuit make_cts(std::uint64_t seed, int max_fanout = 6) {
  CtsCircuit out;
  out.nl = generate_circuit(lib(), test::tiny_profile(seed));
  out.fp = make_floorplan(*out.nl, {});
  out.pl = place(*out.nl, out.fp, {});
  CtsOptions opts;
  opts.max_fanout = max_fanout;
  out.report = synthesize_clock_trees(*out.nl, out.fp, out.pl, opts);
  return out;
}

TEST(ClockTreeTest, BuildsBuffersAndStaysValid) {
  const CtsCircuit cc = make_cts(91);
  EXPECT_GT(cc.report.buffers_added, 0);
  EXPECT_EQ(cc.report.domains, 1);
  EXPECT_TRUE(cc.nl->validate().empty()) << cc.nl->validate();
}

TEST(ClockTreeTest, EveryFlipFlopStillClocked) {
  const CtsCircuit cc = make_cts(92);
  for (const CellId ff : cc.nl->flip_flops()) {
    const CellInst& inst = cc.nl->cell(ff);
    const NetId ck = inst.conn[static_cast<std::size_t>(inst.spec->clock_pin)];
    ASSERT_NE(ck, kNoNet);
    EXPECT_TRUE(cc.nl->is_clock_net(ck));
  }
}

TEST(ClockTreeTest, FanoutBoundedEverywhere) {
  const int kMax = 5;
  const CtsCircuit cc = make_cts(93, kMax);
  // The root net and every buffer output respect the limit.
  const NetId root = cc.nl->pi_net(cc.nl->clock_pis()[0]);
  EXPECT_LE(cc.nl->net(root).fanout(), static_cast<std::size_t>(kMax));
  for (const CellId buf : cc.report.new_cells) {
    EXPECT_LE(cc.nl->net(cc.nl->cell(buf).output_net()).fanout(),
              static_cast<std::size_t>(kMax));
  }
}

TEST(ClockTreeTest, AllSinksReachableFromRoot) {
  const CtsCircuit cc = make_cts(94);
  const NetId root = cc.nl->pi_net(cc.nl->clock_pis()[0]);
  std::size_t reached = 0;
  std::vector<NetId> frontier{root};
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    for (const PinRef& s : cc.nl->net(frontier[head]).sinks) {
      const CellInst& inst = cc.nl->cell(s.cell);
      if (inst.spec->func == CellFunc::kClkBuf) {
        frontier.push_back(inst.output_net());
      } else if (s.pin == inst.spec->clock_pin) {
        ++reached;
      }
    }
  }
  EXPECT_EQ(reached, cc.nl->flip_flops().size());
}

TEST(ClockTreeTest, BuffersAreEcoPlaced) {
  const CtsCircuit cc = make_cts(95);
  for (const CellId buf : cc.report.new_cells) {
    EXPECT_GE(cc.pl.row[static_cast<std::size_t>(buf)], 0);
  }
}

TEST(ClockTreeTest, SmallDomainLeftAlone) {
  auto nl = test::make_shift_register();  // 2 sinks only
  const Floorplan fp = make_floorplan(*nl, {});
  Placement pl = place(*nl, fp, {});
  const CtsReport report = synthesize_clock_trees(*nl, fp, pl, {});
  EXPECT_EQ(report.buffers_added, 0);
  EXPECT_EQ(report.domains, 0);
}

TEST(ClockTreeTest, MultiDomainBuildsSeparateTrees) {
  CircuitProfile p = test::tiny_profile(96);
  p.num_clock_domains = 2;
  p.domain_fraction = {0.5, 0.5};
  p.num_ffs = 48;
  auto nl = generate_circuit(lib(), p);
  const Floorplan fp = make_floorplan(*nl, {});
  Placement pl = place(*nl, fp, {});
  CtsOptions opts;
  opts.max_fanout = 6;
  const CtsReport report = synthesize_clock_trees(*nl, fp, pl, opts);
  EXPECT_EQ(report.domains, 2);
  EXPECT_TRUE(nl->validate().empty());
}

}  // namespace
}  // namespace tpi
