#include "layout/placement.hpp"

#include <gtest/gtest.h>

#include <map>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"

namespace tpi {
namespace {

using test::lib;

struct PlacedCircuit {
  std::unique_ptr<Netlist> nl;
  Floorplan fp;
  Placement pl;
};

PlacedCircuit make_placed(std::uint64_t seed) {
  PlacedCircuit out;
  out.nl = generate_circuit(lib(), test::tiny_profile(seed));
  out.fp = make_floorplan(*out.nl, {});
  out.pl = place(*out.nl, out.fp, {});
  return out;
}

// Legality: every placeable cell on a row, inside the core, site-aligned,
// and without overlaps within its row.
void expect_legal(const PlacedCircuit& pc) {
  const Netlist& nl = *pc.nl;
  for (std::size_t c = 0; c < nl.num_cells(); ++c) {
    const CellSpec* spec = nl.cell(static_cast<CellId>(c)).spec;
    if (spec->func == CellFunc::kFiller) continue;
    ASSERT_GE(pc.pl.row[c], 0) << "unplaced cell " << nl.cell(static_cast<CellId>(c)).name;
    const Point& p = pc.pl.pos[c];
    const double lo = p.x - spec->width_um / 2.0;
    const double hi = p.x + spec->width_um / 2.0;
    EXPECT_GE(lo, pc.fp.core_box.lx - 1e-6);
    EXPECT_LE(hi, pc.fp.core_box.lx + pc.fp.row_length_um + 1e-6);
    const double site_pos = (lo - pc.fp.core_box.lx) / pc.fp.site_width_um;
    EXPECT_NEAR(site_pos, std::round(site_pos), 1e-6);
  }
  for (int r = 0; r < pc.fp.num_rows; ++r) {
    double cursor = pc.fp.core_box.lx - 1e-9;
    for (const CellId c : pc.pl.row_order[static_cast<std::size_t>(r)]) {
      const CellSpec* spec = nl.cell(c).spec;
      const double lo = pc.pl.pos[static_cast<std::size_t>(c)].x - spec->width_um / 2.0;
      EXPECT_GE(lo, cursor - 1e-6) << "overlap in row " << r;
      cursor = lo + spec->width_um;
    }
    EXPECT_LE(pc.pl.row_used_um[static_cast<std::size_t>(r)],
              pc.fp.row_length_um + 1e-6);
  }
}

TEST(PlacementTest, ProducesLegalPlacement) {
  const PlacedCircuit pc = make_placed(71);
  expect_legal(pc);
}

TEST(PlacementTest, AllCellsAccountedForInRows) {
  const PlacedCircuit pc = make_placed(72);
  std::size_t in_rows = 0;
  for (const auto& row : pc.pl.row_order) in_rows += row.size();
  std::size_t placeable = 0;
  for (std::size_t c = 0; c < pc.nl->num_cells(); ++c) {
    placeable += pc.nl->cell(static_cast<CellId>(c)).spec->func != CellFunc::kFiller;
  }
  EXPECT_EQ(in_rows, placeable);
}

TEST(PlacementTest, BeatsNaiveSpreadOnWirelength) {
  auto nl = generate_circuit(lib(), test::small_profile(73));
  const Floorplan fp = make_floorplan(*nl, {});
  PlacementOptions zero_iters;
  zero_iters.global_iterations = 0;
  const Placement naive = place(*nl, fp, zero_iters);
  const Placement tuned = place(*nl, fp, {});
  EXPECT_LT(tuned.total_hpwl(*nl), 0.9 * naive.total_hpwl(*nl));
}

TEST(PlacementTest, DeterministicAcrossRuns) {
  const PlacedCircuit a = make_placed(74);
  const PlacedCircuit b = make_placed(74);
  for (std::size_t c = 0; c < a.nl->num_cells(); ++c) {
    EXPECT_DOUBLE_EQ(a.pl.pos[c].x, b.pl.pos[c].x);
    EXPECT_DOUBLE_EQ(a.pl.pos[c].y, b.pl.pos[c].y);
  }
}

TEST(PlacementTest, PadsLieOnChipBoundary) {
  const PlacedCircuit pc = make_placed(75);
  const Rect& box = pc.fp.chip_box;
  auto on_edge = [&](const Point& p) {
    const double eps = 1e-6;
    const bool x_edge = std::abs(p.x - box.lx) < eps || std::abs(p.x - box.hx) < eps;
    const bool y_edge = std::abs(p.y - box.ly) < eps || std::abs(p.y - box.hy) < eps;
    return (x_edge && p.y >= box.ly - eps && p.y <= box.hy + eps) ||
           (y_edge && p.x >= box.lx - eps && p.x <= box.hx + eps);
  };
  for (const Point& p : pc.pl.pi_pad) EXPECT_TRUE(on_edge(p));
  for (const Point& p : pc.pl.po_pad) EXPECT_TRUE(on_edge(p));
}

TEST(PlacementTest, EcoInsertsWithoutDisturbingOthers) {
  PlacedCircuit pc = make_placed(76);
  // Record pre-ECO rows of existing cells.
  std::map<CellId, int> rows_before;
  for (std::size_t c = 0; c < pc.nl->num_cells(); ++c) {
    rows_before[static_cast<CellId>(c)] = pc.pl.row[c];
  }
  const CellSpec* buf = lib().gate(CellFunc::kBuf, 1);  // X1 fits row gaps
  std::vector<CellId> added;
  for (int i = 0; i < 5; ++i) {
    added.push_back(pc.nl->add_cell(buf, "eco" + std::to_string(i)));
  }
  eco_place(*pc.nl, pc.fp, pc.pl, added);
  expect_legal(pc);
  for (const CellId c : added) {
    EXPECT_GE(pc.pl.row[static_cast<std::size_t>(c)], 0);
  }
  // ECO never moves a cell to a different row (it may repack within a row).
  for (const auto& [cell, row] : rows_before) {
    EXPECT_EQ(pc.pl.row[static_cast<std::size_t>(cell)], row);
  }
}

TEST(PlacementTest, EcoOverflowFallsBackToLeastUsedRow) {
  // When no row can host the new cell, ECO placement still places it (the
  // core simply exceeds the utilization target) instead of failing.
  PlacedCircuit pc = make_placed(78);
  const CellSpec* wide = lib().by_name("TSFF_X1");
  std::vector<CellId> added;
  for (int i = 0; i < 40; ++i) {
    added.push_back(pc.nl->add_cell(wide, "big" + std::to_string(i)));
  }
  eco_place(*pc.nl, pc.fp, pc.pl, added);
  for (const CellId c : added) EXPECT_GE(pc.pl.row[static_cast<std::size_t>(c)], 0);
}

TEST(PlacementTest, FillersPlugEveryGap) {
  PlacedCircuit pc = make_placed(77);
  const FillerReport report = insert_fillers(*pc.nl, pc.fp, pc.pl);
  EXPECT_GT(report.cells_added, 0);
  // After filling, every row is exactly full.
  for (int r = 0; r < pc.fp.num_rows; ++r) {
    double used = 0.0;
    for (const CellId c : pc.pl.row_order[static_cast<std::size_t>(r)]) {
      used += pc.nl->cell(c).spec->width_um;
    }
    EXPECT_NEAR(used, pc.fp.row_length_um, 1e-6) << "row " << r;
  }
  // Filler area fills exactly the non-cell row area.
  const double row_area = pc.fp.num_rows * pc.fp.row_length_um * pc.fp.row_height_um;
  EXPECT_NEAR(report.area_um2, row_area - placeable_cell_area(*pc.nl),
              1e-3 * row_area + 1.0);
}

TEST(PlacementTest, HpwlIncludesPads) {
  auto nl = test::make_small_comb();
  const Floorplan fp = make_floorplan(*nl, {});
  const Placement pl = place(*nl, fp, {});
  EXPECT_GT(pl.total_hpwl(*nl), 0.0);
}

}  // namespace
}  // namespace tpi
