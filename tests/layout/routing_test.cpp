#include "layout/routing.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"

namespace tpi {
namespace {

using test::lib;

struct RoutedCircuit {
  std::unique_ptr<Netlist> nl;
  Floorplan fp;
  Placement pl;
  RoutingResult routes;
};

RoutedCircuit make_routed(std::uint64_t seed) {
  RoutedCircuit out;
  out.nl = generate_circuit(lib(), test::tiny_profile(seed));
  out.fp = make_floorplan(*out.nl, {});
  out.pl = place(*out.nl, out.fp, {});
  out.routes = route(*out.nl, out.fp, out.pl);
  return out;
}

TEST(RoutingTest, EveryDrivenNetHasATree) {
  const RoutedCircuit rc = make_routed(81);
  ASSERT_EQ(rc.routes.nets.size(), rc.nl->num_nets());
  for (std::size_t n = 0; n < rc.nl->num_nets(); ++n) {
    const Net& net = rc.nl->net(static_cast<NetId>(n));
    if (!net.driver.valid() && !net.driven_by_pi()) continue;
    const RouteTree& tree = rc.routes.nets[n];
    EXPECT_EQ(tree.node.size(), 1 + net.fanout()) << net.name;
  }
}

TEST(RoutingTest, TreesAreConnectedToRoot) {
  const RoutedCircuit rc = make_routed(82);
  for (const RouteTree& tree : rc.routes.nets) {
    for (std::size_t v = 1; v < tree.node.size(); ++v) {
      // Walk to the root; must terminate at node 0.
      int u = static_cast<int>(v);
      int guard = 0;
      while (tree.parent[static_cast<std::size_t>(u)] >= 0 && guard++ < 1000) {
        u = tree.parent[static_cast<std::size_t>(u)];
      }
      EXPECT_EQ(u, 0);
    }
  }
}

TEST(RoutingTest, TreeLengthAtLeastHalfHpwlAndBounded) {
  const RoutedCircuit rc = make_routed(83);
  for (std::size_t n = 0; n < rc.nl->num_nets(); ++n) {
    const Net& net = rc.nl->net(static_cast<NetId>(n));
    if (!net.driver.valid() && !net.driven_by_pi()) continue;
    const RouteTree& tree = rc.routes.nets[n];
    HpwlAccumulator acc;
    for (const Point& p : tree.node) acc.add(p);
    // A spanning tree is at least half the bounding-box half-perimeter and
    // at most fanout times it (Manhattan geometry).
    EXPECT_GE(tree.length_um + 1e-9, acc.value() / 2.0);
    if (tree.node.size() >= 2) {
      EXPECT_LE(tree.length_um,
                static_cast<double>(tree.node.size()) * (acc.value() + 1.0) + 1e-9);
    }
  }
}

TEST(RoutingTest, PathToRootMatchesEdgeSum) {
  const RoutedCircuit rc = make_routed(84);
  for (const RouteTree& tree : rc.routes.nets) {
    double total = 0.0;
    for (std::size_t v = 1; v < tree.node.size(); ++v) {
      total += tree.edge_um[v];
      EXPECT_GE(tree.path_to_root_um(static_cast<int>(v)), tree.edge_um[v] - 1e-9);
    }
    EXPECT_NEAR(tree.length_um, total, 1e-6);
  }
}

TEST(RoutingTest, TotalLengthAggregates) {
  const RoutedCircuit rc = make_routed(85);
  double sum = 0.0;
  for (const RouteTree& tree : rc.routes.nets) sum += tree.length_um;
  EXPECT_NEAR(rc.routes.total_wire_length_um, sum, 1e-6);
  EXPECT_GE(rc.routes.detour_length_um, 0.0);
}

TEST(RoutingTest, CongestionCausesDetours) {
  auto nl = generate_circuit(lib(), test::small_profile(86));
  const Floorplan fp = make_floorplan(*nl, {});
  const Placement pl = place(*nl, fp, {});
  RoutingOptions generous, scarce;
  scarce.tracks_per_gcell = 4.0;  // absurdly low capacity
  const RoutingResult easy = route(*nl, fp, pl, generous);
  const RoutingResult hard = route(*nl, fp, pl, scarce);
  EXPECT_GT(hard.overflowed_crossings, easy.overflowed_crossings);
  EXPECT_GT(hard.detour_length_um, easy.detour_length_um);
  EXPECT_GT(hard.total_wire_length_um, easy.total_wire_length_um);
}

TEST(RoutingTest, TwoPinNetIsManhattanExact) {
  Netlist nl(&lib(), "two_pin");
  const int a = nl.add_primary_input("a");
  const CellSpec* buf = lib().gate(CellFunc::kBuf, 1);
  const CellId g = nl.add_cell(buf, "g");
  nl.connect(g, 0, nl.pi_net(a));
  const NetId out = nl.add_net("out");
  nl.connect(g, buf->output_pin, out);
  nl.add_primary_output("po", out);
  const Floorplan fp = make_floorplan(nl, {});
  const Placement pl = place(nl, fp, {});
  const RoutingResult routes = route(nl, fp, pl);
  const RouteTree& tree = routes.nets[static_cast<std::size_t>(nl.pi_net(a))];
  ASSERT_EQ(tree.node.size(), 2u);
  EXPECT_NEAR(tree.length_um, manhattan(tree.node[0], tree.node[1]) +
                                  (tree.length_um - manhattan(tree.node[0], tree.node[1])),
              1e-9);  // base length plus any detour charge
  EXPECT_GE(tree.length_um, manhattan(tree.node[0], tree.node[1]) - 1e-9);
}

}  // namespace
}  // namespace tpi
