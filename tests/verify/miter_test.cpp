#include "verify/miter.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "netlist/bench_io.hpp"
#include "scan/scan.hpp"

namespace tpi {
namespace {

using test::lib;

TEST(MiterTest, SelfMiterIsStructurallySound) {
  const auto a = test::make_small_comb();
  const Netlist b = *a;  // identical copy
  const MiterResult m = build_miter(*a, b);
  ASSERT_TRUE(m.ok()) << m.error;
  ASSERT_NE(m.netlist, nullptr);
  EXPECT_TRUE(m.netlist->validate().empty()) << m.netlist->validate();
  EXPECT_EQ(m.matched_pos, 2);  // po_z, po_w
  EXPECT_EQ(m.unmatched_pos, 0);
  EXPECT_EQ(m.shared_pis, 3);  // a, b, c shared by name
  EXPECT_EQ(m.tied_pis, 0);
  // Exactly one PO: the reduced miter output.
  ASSERT_EQ(m.netlist->num_pos(), 1u);
  EXPECT_EQ(m.netlist->po_name(0), "miter_out");
  EXPECT_EQ(m.netlist->po_net(0), m.out_net);
  ASSERT_NE(m.out_net, kNoNet);
}

TEST(MiterTest, ConstructionIsDeterministic) {
  const auto a = test::make_shift_register();
  const Netlist b = *a;
  const MiterResult m1 = build_miter(*a, b);
  const MiterResult m2 = build_miter(*a, b);
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_EQ(write_bench_string(*m1.netlist), write_bench_string(*m2.netlist));
}

TEST(MiterTest, OneSidedControlInputsAreTiedLow) {
  const auto golden = test::make_shift_register();
  Netlist mutant = *golden;
  insert_scan(mutant, ScanOptions{});  // adds scan_en (and SDFF TI wiring)
  const MiterResult m = build_miter(*golden, mutant);
  ASSERT_TRUE(m.ok()) << m.error;
  EXPECT_TRUE(m.netlist->validate().empty()) << m.netlist->validate();
  EXPECT_EQ(m.matched_pos, 1);
  // clk and d are shared; scan_en (b-only, non-clock) must be tied to 0.
  EXPECT_EQ(m.shared_pis, 2);
  EXPECT_GE(m.tied_pis, 1);
  // The tied control must not surface as a miter PI.
  for (std::size_t i = 0; i < m.netlist->num_pis(); ++i) {
    EXPECT_NE(m.netlist->pi_name(static_cast<int>(i)), "scan_en");
  }
  // Clock PIs are shared, never tied or prefixed.
  ASSERT_EQ(m.netlist->clock_pis().size(), 1u);
  EXPECT_EQ(m.netlist->pi_name(m.netlist->clock_pis()[0]), "clk");
}

TEST(MiterTest, FreeModeExposesOneSidedInputs) {
  const auto golden = test::make_shift_register();
  Netlist mutant = *golden;
  insert_scan(mutant, ScanOptions{});
  MiterOptions opts;
  opts.tie_unmatched_pis_low = false;
  const MiterResult m = build_miter(*golden, mutant, opts);
  ASSERT_TRUE(m.ok()) << m.error;
  EXPECT_EQ(m.tied_pis, 0);
  bool saw_scan_en = false;
  for (std::size_t i = 0; i < m.netlist->num_pis(); ++i) {
    saw_scan_en |= m.netlist->pi_name(static_cast<int>(i)) == "scan_en";
  }
  EXPECT_TRUE(saw_scan_en);
}

TEST(MiterTest, NoCommonPrimaryOutputsIsAnError) {
  Netlist a(&lib(), "a");
  const int xa = a.add_primary_input("x");
  const CellSpec* buf = lib().gate(CellFunc::kBuf, 1);
  const CellId ca = a.add_cell(buf, "u");
  a.connect(ca, 0, a.pi_net(xa));
  const NetId na = a.add_net("n");
  a.connect(ca, buf->output_pin, na);
  a.add_primary_output("pa", na);

  Netlist b(&lib(), "b");
  const int xb = b.add_primary_input("x");
  const CellId cb = b.add_cell(buf, "u");
  b.connect(cb, 0, b.pi_net(xb));
  const NetId nb = b.add_net("n");
  b.connect(cb, buf->output_pin, nb);
  b.add_primary_output("pb", nb);

  const MiterResult m = build_miter(a, b);
  EXPECT_FALSE(m.ok());
  EXPECT_EQ(m.netlist, nullptr);
  EXPECT_NE(m.error.find("no"), std::string::npos) << m.error;
}

TEST(MiterTest, UnmatchedPosErrorWhenNotIgnored) {
  const auto golden = test::make_small_comb();
  Netlist mutant = *golden;
  mutant.add_primary_output("extra", mutant.find_net("y"));
  MiterOptions opts;
  opts.ignore_unmatched_pos = false;
  const MiterResult strict = build_miter(*golden, mutant, opts);
  EXPECT_FALSE(strict.ok());
  const MiterResult lax = build_miter(*golden, mutant);
  ASSERT_TRUE(lax.ok()) << lax.error;
  EXPECT_EQ(lax.matched_pos, 2);
  EXPECT_EQ(lax.unmatched_pos, 1);
}

}  // namespace
}  // namespace tpi
