#include "verify/fuzz.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../common/test_circuits.hpp"
#include "netlist/design_db.hpp"
#include "util/rng.hpp"

namespace tpi {
namespace {

using test::lib;

// The headline acceptance check: 50 random mutator pipelines at the fixed
// default seed, zero false alarms.
TEST(FuzzTest, FiftyPipelinesNoFalseAlarms) {
  TransformFuzzer fuzzer(lib());
  const FuzzReport rep = fuzzer.run();
  for (const FuzzFailure& f : rep.failures) {
    ADD_FAILURE() << "iteration " << f.iteration << " failed (" << f.error
                  << "), minimized pipeline size " << f.minimized.size();
  }
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.iterations_run, 50);
  EXPECT_GE(rep.transforms_applied, 50);
  EXPECT_NE(rep.digest, 0u);
}

/// A mutator that is NOT mission-mode invisible: splices an inverter in
/// front of the first primary output.
FuzzTransform break_po_transform() {
  return {"break_po", [](DesignDB& db, Rng&) {
            Netlist& nl = db.netlist();
            if (nl.num_pos() == 0) return;
            const CellSpec* inv = nl.library().gate(CellFunc::kInv, 1);
            const CellId c =
                nl.add_cell(inv, "bug.inv." + std::to_string(nl.num_cells()));
            nl.insert_cell_in_net(nl.po_net(0), c, 0);
          }};
}

TEST(FuzzTest, BrokenMutatorIsCaughtAndMinimized) {
  FuzzOptions opts;
  opts.iterations = 8;
  TransformFuzzer fuzzer(lib(), opts);
  fuzzer.add_transform(break_po_transform());
  const FuzzReport rep = fuzzer.run();
  ASSERT_FALSE(rep.ok()) << "no pipeline drew break_po within " << opts.iterations
                         << " iterations; bump iterations or reseed";
  for (const FuzzFailure& f : rep.failures) {
    // Every failing pipeline contains the bad mutator...
    EXPECT_NE(std::find(f.pipeline.begin(), f.pipeline.end(), "break_po"),
              f.pipeline.end());
    // ...and shrinking isolates it (acceptance bound: <= 3 transforms).
    EXPECT_LE(f.minimized.size(), 3u);
    ASSERT_FALSE(f.minimized.empty());
    EXPECT_NE(std::find(f.minimized.begin(), f.minimized.end(), "break_po"),
              f.minimized.end());
    // The functional failure carries a shrunk, non-empty counterexample.
    if (f.error.empty()) {
      EXPECT_FALSE(f.cex.empty());
      EXPECT_GE(f.cex.fail_frame, 0);
      EXPECT_LE(f.cex.num_frames(), 4u);
    }
  }
  // Clean pipelines (without break_po) still pass: no collateral alarms.
  EXPECT_LT(static_cast<int>(rep.failures.size()), rep.iterations_run);
}

TEST(FuzzTest, DigestAndOutcomeReproducible) {
  FuzzOptions opts;
  opts.iterations = 5;
  const FuzzReport a = TransformFuzzer(lib(), opts).run();
  const FuzzReport b = TransformFuzzer(lib(), opts).run();
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.iterations_run, b.iterations_run);
  EXPECT_EQ(a.transforms_applied, b.transforms_applied);
  EXPECT_EQ(a.failures.size(), b.failures.size());

  FuzzOptions other = opts;
  other.seed = opts.seed + 1;
  const FuzzReport c = TransformFuzzer(lib(), other).run();
  EXPECT_NE(a.digest, c.digest);  // seed actually feeds the pipelines
}

}  // namespace
}  // namespace tpi
