#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"
#include "flow/flow.hpp"
#include "netlist/bench_io.hpp"
#include "verify/fuzz.hpp"

namespace tpi {
namespace {

using test::lib;

/// Scoped setenv that restores the previous value (or unsets) on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      ::setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> old_;
};

TEST(DeterminismTest, GeneratorIsBitIdenticalForSameProfileAndSeed) {
  const CircuitProfile prof = test::tiny_profile(555);
  const auto a = generate_circuit(lib(), prof);
  const auto b = generate_circuit(lib(), prof);
  EXPECT_EQ(write_bench_string(*a), write_bench_string(*b));
}

TEST(DeterminismTest, FuzzOptionsReadEnvOverrides) {
  {
    ScopedEnv seed("TPI_FUZZ_SEED", "0x1234");
    ScopedEnv iters("TPI_FUZZ_ITERS", "7");
    const FuzzOptions opts = FuzzOptions::from_env();
    EXPECT_EQ(opts.seed, 0x1234u);
    EXPECT_EQ(opts.iterations, 7);
  }
  {
    // Invalid values warn and fall back to the defaults.
    ScopedEnv seed("TPI_FUZZ_SEED", "not-a-number");
    ScopedEnv iters("TPI_FUZZ_ITERS", "-3");
    const FuzzOptions opts = FuzzOptions::from_env();
    EXPECT_EQ(opts.seed, FuzzOptions{}.seed);
    EXPECT_EQ(opts.iterations, FuzzOptions{}.iterations);
  }
}

// The fuzzer digest is the determinism contract: the job-count knobs that
// parallelize other subsystems must not leak into it.
TEST(DeterminismTest, FuzzerDigestStableAcrossJobEnvKnobs) {
  FuzzOptions opts;
  opts.iterations = 4;
  std::uint64_t digest_a = 0, digest_b = 0;
  {
    ScopedEnv bench_jobs("TPI_BENCH_JOBS", "1");
    ScopedEnv atpg_jobs("TPI_ATPG_JOBS", "1");
    const FuzzReport rep = TransformFuzzer(lib(), opts).run();
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.iterations_run, 4);
    digest_a = rep.digest;
  }
  {
    ScopedEnv bench_jobs("TPI_BENCH_JOBS", "4");
    ScopedEnv atpg_jobs("TPI_ATPG_JOBS", "3");
    const FuzzReport rep = TransformFuzzer(lib(), opts).run();
    EXPECT_TRUE(rep.ok());
    digest_b = rep.digest;
  }
  EXPECT_EQ(digest_a, digest_b);
  EXPECT_NE(digest_a, 0u);
}

// Flow + verify stage at different fault-sim worker counts: the verify.*
// metrics ride the deterministic (non-"rt.") snapshot, so the whole
// serialised snapshot must be bit-identical.
TEST(DeterminismTest, VerifyMetricsIdenticalAcrossAtpgJobs) {
  FlowOptions base;
  base.tp_percent = 5.0;
  base.verify = true;

  FlowOptions serial = base;
  serial.atpg.jobs = 1;
  FlowEngine e1(lib(), test::tiny_profile(777), serial);
  const FlowResult& r1 = e1.run(stage_mask_from(serial));

  FlowOptions parallel = base;
  parallel.atpg.jobs = 4;
  FlowEngine e2(lib(), test::tiny_profile(777), parallel);
  const FlowResult& r2 = e2.run(stage_mask_from(parallel));

  ASSERT_TRUE(r1.verify.ok()) << r1.verify.error;
  ASSERT_TRUE(r2.verify.ok()) << r2.verify.error;
  EXPECT_EQ(r1.verify.replay_claimed, r2.verify.replay_claimed);
  EXPECT_EQ(r1.verify.replay_confirmed, r2.verify.replay_confirmed);
  EXPECT_EQ(r1.verify.frames_simulated, r2.verify.frames_simulated);
  EXPECT_EQ(r1.metrics.to_json(MetricsSnapshot::kNoRuntime),
            r2.metrics.to_json(MetricsSnapshot::kNoRuntime));
}

}  // namespace
}  // namespace tpi
