#include "verify/equiv.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"
#include "netlist/design_db.hpp"
#include "scan/scan.hpp"
#include "tpi/tpi.hpp"
#include "verify/miter.hpp"

namespace tpi {
namespace {

using test::lib;

TEST(EquivTest, ShiftRegisterIsSelfEquivalent) {
  const auto golden = test::make_shift_register();
  const Netlist copy = *golden;
  const MiterResult m = build_miter(*golden, copy);
  ASSERT_TRUE(m.ok()) << m.error;
  EquivChecker checker(*m.netlist);
  const EquivResult res = checker.check();
  EXPECT_TRUE(res.equivalent);
  // The ternary domain is non-relational (X ^ X = X), so an all-X initial
  // state cannot prove a *sequential* self-miter silent — only refute it.
  EXPECT_FALSE(res.proven_x_init);
  EXPECT_GT(res.frames_simulated, 0);
  EXPECT_TRUE(res.cex.empty());
}

// With no state bits the ternary pass sees only binary PIs, so a silent
// combinational miter IS provable.
TEST(EquivTest, CombSelfMiterProvenSilent) {
  const auto golden = test::make_small_comb();
  const Netlist copy = *golden;
  const MiterResult m = build_miter(*golden, copy);
  ASSERT_TRUE(m.ok()) << m.error;
  const EquivResult res = EquivChecker(*m.netlist).check();
  EXPECT_TRUE(res.equivalent);
  EXPECT_TRUE(res.proven_x_init);
}

TEST(EquivTest, ScanInsertionIsMissionModeEquivalent) {
  const auto golden = generate_circuit(lib(), test::tiny_profile(601));
  Netlist mutant = *golden;
  insert_scan(mutant, ScanOptions{});
  const MiterResult m = build_miter(*golden, mutant);
  ASSERT_TRUE(m.ok()) << m.error;
  const EquivResult res = EquivChecker(*m.netlist).check();
  EXPECT_TRUE(res.equivalent) << "cex from " << res.cex.source << " at frame "
                              << res.cex.fail_frame;
}

// The full DfT stack of the paper's flow: TPI (TSFFs), scan conversion,
// chain stitching. All of it must be invisible in mission mode.
TEST(EquivTest, TpiScanStitchIsMissionModeEquivalent) {
  const auto golden = generate_circuit(lib(), test::tiny_profile(602));
  Netlist mutant = *golden;
  {
    DesignDB db(mutant);
    TpiOptions tpi;
    tpi.num_test_points = 3;
    insert_test_points(db, tpi);
  }
  const ScanOptions sopts;
  insert_scan(mutant, sopts);
  stitch_chains(mutant, plan_chains(mutant, sopts, {}));
  ASSERT_TRUE(mutant.validate().empty()) << mutant.validate();

  const MiterResult m = build_miter(*golden, mutant);
  ASSERT_TRUE(m.ok()) << m.error;
  EXPECT_GT(m.tied_pis, 0);  // scan_en, tp_te, tp_tr, si<k>
  const EquivResult res = EquivChecker(*m.netlist).check();
  EXPECT_TRUE(res.equivalent) << "cex from " << res.cex.source << " at frame "
                              << res.cex.fail_frame;
}

// A deliberately broken "transform" (inverter spliced into the PO net) must
// be caught, and the counterexample must replay and shrink to one all-zero
// frame: from reset both sides output 0 vs 1 immediately.
TEST(EquivTest, BrokenMutantYieldsMinimalReplayableCex) {
  const auto golden = test::make_shift_register();
  Netlist mutant = *golden;
  const CellSpec* inv = lib().gate(CellFunc::kInv, 1);
  ASSERT_NE(inv, nullptr);
  const NetId t = mutant.find_net("t");
  ASSERT_NE(t, kNoNet);
  mutant.insert_cell_in_net(t, mutant.add_cell(inv, "bug.inv"), 0);
  ASSERT_TRUE(mutant.validate().empty()) << mutant.validate();

  const MiterResult m = build_miter(*golden, mutant);
  ASSERT_TRUE(m.ok()) << m.error;
  EquivChecker checker(*m.netlist);
  const EquivResult res = checker.check();
  ASSERT_FALSE(res.equivalent);
  EXPECT_FALSE(res.proven_x_init);
  ASSERT_FALSE(res.cex.empty());
  EXPECT_TRUE(checker.replay(res.cex));
  // Shrinking: mismatch fires at the very first frame with nothing set.
  EXPECT_EQ(res.cex.num_frames(), 1u);
  EXPECT_EQ(res.cex.fail_frame, 0);
  EXPECT_TRUE(res.cex.initial_state.empty());
  for (const auto& frame : res.cex.pi_frames) {
    for (const std::uint8_t bit : frame) EXPECT_EQ(bit, 0);
  }
}

// A state-update bug (inverter on the register-to-register path) is only
// visible once corrupted state reaches the PO; the trace must still replay
// after shrinking.
TEST(EquivTest, StatePathBugIsCaughtAndShrunk) {
  const auto golden = test::make_shift_register();
  Netlist mutant = *golden;
  const CellSpec* inv = lib().gate(CellFunc::kInv, 1);
  const NetId q0 = mutant.find_net("q0");
  ASSERT_NE(q0, kNoNet);
  // Only f1's D input moves to the inverted net; the XOR tap keeps q0.
  const CellId f1 = mutant.find_cell("f1");
  ASSERT_NE(f1, kNoCell);
  const CellSpec* dff = mutant.cell(f1).spec;
  mutant.insert_cell_in_net(q0, mutant.add_cell(inv, "bug.inv"), 0,
                            {PinRef{f1, dff->d_pin}});
  ASSERT_TRUE(mutant.validate().empty()) << mutant.validate();

  const MiterResult m = build_miter(*golden, mutant);
  ASSERT_TRUE(m.ok()) << m.error;
  EquivChecker checker(*m.netlist);
  const EquivResult res = checker.check();
  ASSERT_FALSE(res.equivalent);
  ASSERT_FALSE(res.cex.empty());
  EXPECT_TRUE(checker.replay(res.cex));
  const CexTrace again = checker.shrink_trace(res.cex);
  EXPECT_TRUE(checker.replay(again));
  EXPECT_LE(again.num_frames(), res.cex.num_frames());
}

TEST(EquivTest, CheckIsDeterministicInSeed) {
  const auto golden = generate_circuit(lib(), test::tiny_profile(603));
  Netlist mutant = *golden;
  insert_scan(mutant, ScanOptions{});
  const MiterResult m = build_miter(*golden, mutant);
  ASSERT_TRUE(m.ok()) << m.error;
  EquivOptions opts;
  opts.seed = 0xBEEF;
  const EquivResult r1 = EquivChecker(*m.netlist, opts).check();
  const EquivResult r2 = EquivChecker(*m.netlist, opts).check();
  EXPECT_EQ(r1.equivalent, r2.equivalent);
  EXPECT_EQ(r1.proven_x_init, r2.proven_x_init);
  EXPECT_EQ(r1.frames_simulated, r2.frames_simulated);
}

}  // namespace
}  // namespace tpi
