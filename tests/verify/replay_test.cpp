#include "verify/replay.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "atpg/fault.hpp"
#include "flow/flow.hpp"
#include "netlist/design_db.hpp"

namespace tpi {
namespace {

using test::lib;

TEST(ReplayTest, CombinationalAtpgReplaysEveryClaim) {
  auto nl = test::make_small_comb();
  DesignDB db(*nl);
  const AtpgResult atpg = run_atpg(db, AtpgOptions{});
  ASSERT_GT(atpg.detected, 0);
  const ReplayReport rep = replay_patterns(db.comb_model(SeqView::kCapture), atpg);
  EXPECT_TRUE(rep.ok());
  EXPECT_GT(rep.claimed, 0);
  EXPECT_EQ(rep.confirmed, rep.claimed);
  EXPECT_EQ(rep.patterns, static_cast<std::int64_t>(atpg.patterns.size()));
}

// The acceptance check of the verify subsystem: on the default flow (1% TP,
// s38417-profile circuit) 100% of the faults ATPG claims as detected must
// reproduce under independent forced resimulation.
TEST(ReplayTest, FlowAtpgOnS38417ProfileReplaysFully) {
  FlowOptions opts;
  opts.tp_percent = 1.0;
  opts.verify = true;
  FlowEngine engine(lib(), test::small_profile(), opts);
  const FlowResult& r = engine.run(stage_mask_from(opts));
  ASSERT_TRUE(r.verify.ran);
  EXPECT_TRUE(r.verify.ok()) << r.verify.error;
  ASSERT_TRUE(r.verify.replay_ran);
  EXPECT_GT(r.verify.replay_claimed, 0);
  EXPECT_EQ(r.verify.replay_confirmed, r.verify.replay_claimed);
  EXPECT_TRUE(r.verify.equivalent);
}

// Withholding the pattern set must flag every claim instead of silently
// confirming: the replayer's failure path works.
TEST(ReplayTest, MissingPatternsFlagEveryClaim) {
  auto nl = test::make_small_comb();
  DesignDB db(*nl);
  const AtpgResult atpg = run_atpg(db, AtpgOptions{});
  ASSERT_GT(atpg.detected, 0);
  const ReplayReport rep =
      replay_patterns(db.comb_model(SeqView::kCapture), atpg.faults, {});
  EXPECT_FALSE(rep.ok());
  EXPECT_EQ(rep.confirmed, 0);
  EXPECT_EQ(static_cast<std::int64_t>(rep.failures.size()), rep.claimed);
  // Failure records carry enough to locate the fault.
  ASSERT_FALSE(rep.failures.empty());
  EXPECT_NE(rep.failures[0].net, kNoNet);
}

// A truncated pattern set may drop some detections but must never invent
// one: confirmed counts stay consistent and within the claims.
TEST(ReplayTest, TruncatedPatternsNeverOverConfirm) {
  auto nl = test::make_small_comb();
  DesignDB db(*nl);
  const AtpgResult atpg = run_atpg(db, AtpgOptions{});
  ASSERT_GT(atpg.patterns.size(), 1u);
  std::vector<TestPattern> half(atpg.patterns.begin(),
                                atpg.patterns.begin() + atpg.patterns.size() / 2);
  const ReplayReport rep =
      replay_patterns(db.comb_model(SeqView::kCapture), atpg.faults, half);
  EXPECT_LE(rep.confirmed, rep.claimed);
  EXPECT_EQ(rep.confirmed + static_cast<std::int64_t>(rep.failures.size()), rep.claimed);
}

}  // namespace
}  // namespace tpi
