# Empty dependencies file for bench_table3_timing.
# This may be replaced when dependencies are built.
