# Empty dependencies file for bench_fig3_layout_snapshots.
# This may be replaced when dependencies are built.
