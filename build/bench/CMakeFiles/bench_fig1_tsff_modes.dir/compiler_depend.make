# Empty compiler generated dependencies file for bench_fig1_tsff_modes.
# This may be replaced when dependencies are built.
