file(REMOVE_RECURSE
  "CMakeFiles/bench_lbist_coverage.dir/bench_lbist_coverage.cpp.o"
  "CMakeFiles/bench_lbist_coverage.dir/bench_lbist_coverage.cpp.o.d"
  "bench_lbist_coverage"
  "bench_lbist_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lbist_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
