# Empty dependencies file for bench_lbist_coverage.
# This may be replaced when dependencies are built.
