# Empty dependencies file for bench_ablation_timing_driven_tpi.
# This may be replaced when dependencies are built.
