file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_timing_driven_tpi.dir/bench_ablation_timing_driven_tpi.cpp.o"
  "CMakeFiles/bench_ablation_timing_driven_tpi.dir/bench_ablation_timing_driven_tpi.cpp.o.d"
  "bench_ablation_timing_driven_tpi"
  "bench_ablation_timing_driven_tpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_timing_driven_tpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
