# Empty dependencies file for bench_table1_testdata.
# This may be replaced when dependencies are built.
