file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_testdata.dir/bench_table1_testdata.cpp.o"
  "CMakeFiles/bench_table1_testdata.dir/bench_table1_testdata.cpp.o.d"
  "bench_table1_testdata"
  "bench_table1_testdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_testdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
