file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel_microbench.dir/bench_kernel_microbench.cpp.o"
  "CMakeFiles/bench_kernel_microbench.dir/bench_kernel_microbench.cpp.o.d"
  "bench_kernel_microbench"
  "bench_kernel_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
