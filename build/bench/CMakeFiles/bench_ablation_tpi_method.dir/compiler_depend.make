# Empty compiler generated dependencies file for bench_ablation_tpi_method.
# This may be replaced when dependencies are built.
