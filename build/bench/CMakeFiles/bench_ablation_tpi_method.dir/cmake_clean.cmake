file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tpi_method.dir/bench_ablation_tpi_method.cpp.o"
  "CMakeFiles/bench_ablation_tpi_method.dir/bench_ablation_tpi_method.cpp.o.d"
  "bench_ablation_tpi_method"
  "bench_ablation_tpi_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tpi_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
