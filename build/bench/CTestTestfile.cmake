# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(sweep_smoke "/root/repo/build/bench/bench_headline_summary")
set_tests_properties(sweep_smoke PROPERTIES  ENVIRONMENT "TPI_BENCH_SCALE=0.05;TPI_BENCH_JOBS=4" LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
