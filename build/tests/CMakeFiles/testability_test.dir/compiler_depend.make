# Empty compiler generated dependencies file for testability_test.
# This may be replaced when dependencies are built.
