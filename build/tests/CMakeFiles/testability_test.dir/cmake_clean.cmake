file(REMOVE_RECURSE
  "CMakeFiles/testability_test.dir/testability/testability_test.cpp.o"
  "CMakeFiles/testability_test.dir/testability/testability_test.cpp.o.d"
  "testability_test"
  "testability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
