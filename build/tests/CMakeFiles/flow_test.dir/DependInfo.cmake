
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/flow/flow_engine_test.cpp" "tests/CMakeFiles/flow_test.dir/flow/flow_engine_test.cpp.o" "gcc" "tests/CMakeFiles/flow_test.dir/flow/flow_engine_test.cpp.o.d"
  "/root/repo/tests/flow/flow_test.cpp" "tests/CMakeFiles/flow_test.dir/flow/flow_test.cpp.o" "gcc" "tests/CMakeFiles/flow_test.dir/flow/flow_test.cpp.o.d"
  "/root/repo/tests/flow/sweep_test.cpp" "tests/CMakeFiles/flow_test.dir/flow/sweep_test.cpp.o" "gcc" "tests/CMakeFiles/flow_test.dir/flow/sweep_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/tpi_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/bist/CMakeFiles/tpi_bist.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/tpi_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/tpi/CMakeFiles/tpi_tpi.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/tpi_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/sta/CMakeFiles/tpi_sta.dir/DependInfo.cmake"
  "/root/repo/build/src/extraction/CMakeFiles/tpi_extraction.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/tpi_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/atpg/CMakeFiles/tpi_atpg.dir/DependInfo.cmake"
  "/root/repo/build/src/testability/CMakeFiles/tpi_testability.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/tpi_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/tpi_library.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tpi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
