file(REMOVE_RECURSE
  "CMakeFiles/tpi_test.dir/tpi/insertion_test.cpp.o"
  "CMakeFiles/tpi_test.dir/tpi/insertion_test.cpp.o.d"
  "CMakeFiles/tpi_test.dir/tpi/tsff_modes_test.cpp.o"
  "CMakeFiles/tpi_test.dir/tpi/tsff_modes_test.cpp.o.d"
  "tpi_test"
  "tpi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
