# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_test "/root/repo/build/tests/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;tpi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(library_test "/root/repo/build/tests/library_test")
set_tests_properties(library_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;tpi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(netlist_test "/root/repo/build/tests/netlist_test")
set_tests_properties(netlist_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;tpi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(circuits_test "/root/repo/build/tests/circuits_test")
set_tests_properties(circuits_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;tpi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;tpi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(testability_test "/root/repo/build/tests/testability_test")
set_tests_properties(testability_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;tpi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(atpg_test "/root/repo/build/tests/atpg_test")
set_tests_properties(atpg_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;tpi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tpi_test "/root/repo/build/tests/tpi_test")
set_tests_properties(tpi_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;tpi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(scan_test "/root/repo/build/tests/scan_test")
set_tests_properties(scan_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;tpi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(layout_test "/root/repo/build/tests/layout_test")
set_tests_properties(layout_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;tpi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extraction_test "/root/repo/build/tests/extraction_test")
set_tests_properties(extraction_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;tpi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sta_test "/root/repo/build/tests/sta_test")
set_tests_properties(sta_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;tpi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(flow_test "/root/repo/build/tests/flow_test")
set_tests_properties(flow_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;tpi_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bist_test "/root/repo/build/tests/bist_test")
set_tests_properties(bist_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;21;tpi_test;/root/repo/tests/CMakeLists.txt;0;")
