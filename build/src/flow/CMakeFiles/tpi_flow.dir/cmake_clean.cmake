file(REMOVE_RECURSE
  "CMakeFiles/tpi_flow.dir/flow.cpp.o"
  "CMakeFiles/tpi_flow.dir/flow.cpp.o.d"
  "CMakeFiles/tpi_flow.dir/sweep.cpp.o"
  "CMakeFiles/tpi_flow.dir/sweep.cpp.o.d"
  "libtpi_flow.a"
  "libtpi_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
