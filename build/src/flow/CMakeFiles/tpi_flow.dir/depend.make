# Empty dependencies file for tpi_flow.
# This may be replaced when dependencies are built.
