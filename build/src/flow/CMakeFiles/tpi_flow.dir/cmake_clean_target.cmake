file(REMOVE_RECURSE
  "libtpi_flow.a"
)
