# Empty dependencies file for tpi_extraction.
# This may be replaced when dependencies are built.
