file(REMOVE_RECURSE
  "libtpi_extraction.a"
)
