file(REMOVE_RECURSE
  "CMakeFiles/tpi_extraction.dir/extraction.cpp.o"
  "CMakeFiles/tpi_extraction.dir/extraction.cpp.o.d"
  "libtpi_extraction.a"
  "libtpi_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
