file(REMOVE_RECURSE
  "libtpi_layout.a"
)
