# Empty compiler generated dependencies file for tpi_layout.
# This may be replaced when dependencies are built.
