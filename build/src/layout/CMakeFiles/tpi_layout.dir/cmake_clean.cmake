file(REMOVE_RECURSE
  "CMakeFiles/tpi_layout.dir/clock_tree.cpp.o"
  "CMakeFiles/tpi_layout.dir/clock_tree.cpp.o.d"
  "CMakeFiles/tpi_layout.dir/floorplan.cpp.o"
  "CMakeFiles/tpi_layout.dir/floorplan.cpp.o.d"
  "CMakeFiles/tpi_layout.dir/placement.cpp.o"
  "CMakeFiles/tpi_layout.dir/placement.cpp.o.d"
  "CMakeFiles/tpi_layout.dir/routing.cpp.o"
  "CMakeFiles/tpi_layout.dir/routing.cpp.o.d"
  "CMakeFiles/tpi_layout.dir/svg.cpp.o"
  "CMakeFiles/tpi_layout.dir/svg.cpp.o.d"
  "libtpi_layout.a"
  "libtpi_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
