file(REMOVE_RECURSE
  "libtpi_scan.a"
)
