# Empty compiler generated dependencies file for tpi_scan.
# This may be replaced when dependencies are built.
