file(REMOVE_RECURSE
  "CMakeFiles/tpi_scan.dir/scan.cpp.o"
  "CMakeFiles/tpi_scan.dir/scan.cpp.o.d"
  "libtpi_scan.a"
  "libtpi_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
