file(REMOVE_RECURSE
  "CMakeFiles/tpi_netlist.dir/bench_io.cpp.o"
  "CMakeFiles/tpi_netlist.dir/bench_io.cpp.o.d"
  "CMakeFiles/tpi_netlist.dir/levelize.cpp.o"
  "CMakeFiles/tpi_netlist.dir/levelize.cpp.o.d"
  "CMakeFiles/tpi_netlist.dir/netlist.cpp.o"
  "CMakeFiles/tpi_netlist.dir/netlist.cpp.o.d"
  "libtpi_netlist.a"
  "libtpi_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
