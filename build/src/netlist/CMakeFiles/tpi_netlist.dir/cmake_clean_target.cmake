file(REMOVE_RECURSE
  "libtpi_netlist.a"
)
