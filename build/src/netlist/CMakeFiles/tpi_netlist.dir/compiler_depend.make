# Empty compiler generated dependencies file for tpi_netlist.
# This may be replaced when dependencies are built.
