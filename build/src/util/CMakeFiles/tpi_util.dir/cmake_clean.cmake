file(REMOVE_RECURSE
  "CMakeFiles/tpi_util.dir/log.cpp.o"
  "CMakeFiles/tpi_util.dir/log.cpp.o.d"
  "CMakeFiles/tpi_util.dir/rng.cpp.o"
  "CMakeFiles/tpi_util.dir/rng.cpp.o.d"
  "CMakeFiles/tpi_util.dir/stats.cpp.o"
  "CMakeFiles/tpi_util.dir/stats.cpp.o.d"
  "CMakeFiles/tpi_util.dir/table.cpp.o"
  "CMakeFiles/tpi_util.dir/table.cpp.o.d"
  "CMakeFiles/tpi_util.dir/thread_pool.cpp.o"
  "CMakeFiles/tpi_util.dir/thread_pool.cpp.o.d"
  "libtpi_util.a"
  "libtpi_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
