# Empty dependencies file for tpi_util.
# This may be replaced when dependencies are built.
