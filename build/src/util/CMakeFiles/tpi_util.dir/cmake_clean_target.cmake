file(REMOVE_RECURSE
  "libtpi_util.a"
)
