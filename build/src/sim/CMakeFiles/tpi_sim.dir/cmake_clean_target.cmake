file(REMOVE_RECURSE
  "libtpi_sim.a"
)
