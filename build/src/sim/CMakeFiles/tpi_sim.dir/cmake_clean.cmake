file(REMOVE_RECURSE
  "CMakeFiles/tpi_sim.dir/comb_model.cpp.o"
  "CMakeFiles/tpi_sim.dir/comb_model.cpp.o.d"
  "CMakeFiles/tpi_sim.dir/parallel_sim.cpp.o"
  "CMakeFiles/tpi_sim.dir/parallel_sim.cpp.o.d"
  "CMakeFiles/tpi_sim.dir/seq_sim.cpp.o"
  "CMakeFiles/tpi_sim.dir/seq_sim.cpp.o.d"
  "CMakeFiles/tpi_sim.dir/ternary.cpp.o"
  "CMakeFiles/tpi_sim.dir/ternary.cpp.o.d"
  "libtpi_sim.a"
  "libtpi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
