# Empty dependencies file for tpi_sim.
# This may be replaced when dependencies are built.
