file(REMOVE_RECURSE
  "libtpi_tpi.a"
)
