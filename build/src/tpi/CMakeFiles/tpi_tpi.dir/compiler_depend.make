# Empty compiler generated dependencies file for tpi_tpi.
# This may be replaced when dependencies are built.
