file(REMOVE_RECURSE
  "CMakeFiles/tpi_tpi.dir/tpi.cpp.o"
  "CMakeFiles/tpi_tpi.dir/tpi.cpp.o.d"
  "libtpi_tpi.a"
  "libtpi_tpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_tpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
