
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testability/testability.cpp" "src/testability/CMakeFiles/tpi_testability.dir/testability.cpp.o" "gcc" "src/testability/CMakeFiles/tpi_testability.dir/testability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tpi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/tpi_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/library/CMakeFiles/tpi_library.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tpi_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
