file(REMOVE_RECURSE
  "CMakeFiles/tpi_testability.dir/testability.cpp.o"
  "CMakeFiles/tpi_testability.dir/testability.cpp.o.d"
  "libtpi_testability.a"
  "libtpi_testability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_testability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
