file(REMOVE_RECURSE
  "libtpi_testability.a"
)
