# Empty compiler generated dependencies file for tpi_testability.
# This may be replaced when dependencies are built.
