file(REMOVE_RECURSE
  "libtpi_library.a"
)
