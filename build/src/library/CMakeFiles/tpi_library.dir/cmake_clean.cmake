file(REMOVE_RECURSE
  "CMakeFiles/tpi_library.dir/cell.cpp.o"
  "CMakeFiles/tpi_library.dir/cell.cpp.o.d"
  "CMakeFiles/tpi_library.dir/library.cpp.o"
  "CMakeFiles/tpi_library.dir/library.cpp.o.d"
  "CMakeFiles/tpi_library.dir/nldm.cpp.o"
  "CMakeFiles/tpi_library.dir/nldm.cpp.o.d"
  "libtpi_library.a"
  "libtpi_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
