# Empty dependencies file for tpi_library.
# This may be replaced when dependencies are built.
