file(REMOVE_RECURSE
  "libtpi_atpg.a"
)
