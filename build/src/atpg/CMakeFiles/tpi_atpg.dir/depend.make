# Empty dependencies file for tpi_atpg.
# This may be replaced when dependencies are built.
