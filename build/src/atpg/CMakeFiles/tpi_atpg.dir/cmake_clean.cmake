file(REMOVE_RECURSE
  "CMakeFiles/tpi_atpg.dir/atpg.cpp.o"
  "CMakeFiles/tpi_atpg.dir/atpg.cpp.o.d"
  "CMakeFiles/tpi_atpg.dir/fault.cpp.o"
  "CMakeFiles/tpi_atpg.dir/fault.cpp.o.d"
  "CMakeFiles/tpi_atpg.dir/fault_sim.cpp.o"
  "CMakeFiles/tpi_atpg.dir/fault_sim.cpp.o.d"
  "CMakeFiles/tpi_atpg.dir/podem.cpp.o"
  "CMakeFiles/tpi_atpg.dir/podem.cpp.o.d"
  "libtpi_atpg.a"
  "libtpi_atpg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_atpg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
