file(REMOVE_RECURSE
  "CMakeFiles/tpi_sta.dir/sta.cpp.o"
  "CMakeFiles/tpi_sta.dir/sta.cpp.o.d"
  "libtpi_sta.a"
  "libtpi_sta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_sta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
