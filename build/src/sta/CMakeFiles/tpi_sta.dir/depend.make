# Empty dependencies file for tpi_sta.
# This may be replaced when dependencies are built.
