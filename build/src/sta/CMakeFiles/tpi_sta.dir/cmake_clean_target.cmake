file(REMOVE_RECURSE
  "libtpi_sta.a"
)
