# Empty dependencies file for tpi_circuits.
# This may be replaced when dependencies are built.
