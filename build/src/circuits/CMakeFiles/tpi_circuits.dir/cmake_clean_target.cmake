file(REMOVE_RECURSE
  "libtpi_circuits.a"
)
