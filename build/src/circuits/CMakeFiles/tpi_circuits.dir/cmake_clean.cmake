file(REMOVE_RECURSE
  "CMakeFiles/tpi_circuits.dir/generator.cpp.o"
  "CMakeFiles/tpi_circuits.dir/generator.cpp.o.d"
  "CMakeFiles/tpi_circuits.dir/profiles.cpp.o"
  "CMakeFiles/tpi_circuits.dir/profiles.cpp.o.d"
  "libtpi_circuits.a"
  "libtpi_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
