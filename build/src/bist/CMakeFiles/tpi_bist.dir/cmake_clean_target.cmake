file(REMOVE_RECURSE
  "libtpi_bist.a"
)
