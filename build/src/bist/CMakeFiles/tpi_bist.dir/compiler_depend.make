# Empty compiler generated dependencies file for tpi_bist.
# This may be replaced when dependencies are built.
