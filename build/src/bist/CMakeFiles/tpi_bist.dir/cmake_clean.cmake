file(REMOVE_RECURSE
  "CMakeFiles/tpi_bist.dir/lbist.cpp.o"
  "CMakeFiles/tpi_bist.dir/lbist.cpp.o.d"
  "libtpi_bist.a"
  "libtpi_bist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpi_bist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
