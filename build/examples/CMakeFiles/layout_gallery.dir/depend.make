# Empty dependencies file for layout_gallery.
# This may be replaced when dependencies are built.
