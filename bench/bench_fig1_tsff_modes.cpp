// Reproduces Fig. 1: demonstrates the transparent scan flip-flop's four
// operating modes on a live netlist and reports the application-mode delay
// penalty (>= two multiplexer delays, §3.1).
#include "bench_common.hpp"
#include "circuits/generator.hpp"
#include "sim/seq_sim.hpp"

int main() {
  using namespace tpi;
  using namespace tpi::bench;
  setup_logging();
  const auto lib = make_phl130_library();

  std::printf("=== Figure 1: transparent scan flip-flop (TSFF) ===\n\n");
  const CellSpec* tsff = lib->by_name("TSFF_X1");
  const CellSpec* sdff = lib->by_name("SDFF_X1");
  const CellSpec* dff = lib->by_name("DFF_X1");
  const CellSpec* mux = lib->by_name("MUX2_X1");

  std::printf("cell geometry (area in um^2):\n");
  TextTable geo({"cell", "area", "D->Q arc", "CK->Q delay @50ps/10fF (ps)"});
  for (const CellSpec* c : {dff, sdff, tsff}) {
    const TimingArc* ck = c->arc_from(c->clock_pin);
    const TimingArc* d = c->d_pin >= 0 ? c->arc_from(c->d_pin) : nullptr;
    geo.add_row({c->name, fmt_fixed(c->area_um2(), 2), d != nullptr ? "yes" : "no",
                 fmt_fixed(ck->delay.lookup(50, 10).value_ps, 1)});
  }
  std::printf("%s\n", geo.to_string().c_str());

  const double d_q = tsff->arc_from(tsff->d_pin)->delay.lookup(50, 10).value_ps;
  const double mux_d = mux->arcs.front().delay.lookup(50, 10).value_ps;
  std::printf("application-mode D->Q delay: %.1f ps (%.2fx one MUX2 delay)\n",
              d_q, d_q / mux_d);
  std::printf("  §3.1: \"propagation delay in application mode is increased by\n"
              "  at least the delay of the two multiplexers\"\n\n");

  std::printf("mode table (TE, TR -> behaviour), exercised by simulation:\n");
  TextTable modes({"mode", "TE", "TR", "output Q", "internal FF"});
  modes.add_row({"application", "0", "0", "= D (transparent)", "captures D"});
  modes.add_row({"scan shift", "1", "1", "= FF", "captures TI"});
  modes.add_row({"scan capture", "0", "1", "= FF (control point)", "captures D (observe)"});
  modes.add_row({"scan flush", "1", "0", "= TI (flush path)", "captures TI"});
  std::printf("%s\n", modes.to_string().c_str());

  // Live demonstration: one TSFF between two registers; drive each mode.
  Netlist nl(lib.get(), "fig1");
  const int clk = nl.add_primary_input("clk");
  nl.mark_clock(clk);
  const NetId d = nl.pi_net(nl.add_primary_input("d"));
  const NetId ti = nl.pi_net(nl.add_primary_input("ti"));
  const NetId te = nl.pi_net(nl.add_primary_input("te"));
  const NetId tr = nl.pi_net(nl.add_primary_input("tr"));
  const CellId tp = nl.add_cell(tsff, "tp");
  nl.connect(tp, tsff->d_pin, d);
  nl.connect(tp, tsff->ti_pin, ti);
  nl.connect(tp, tsff->te_pin, te);
  nl.connect(tp, tsff->tr_pin, tr);
  nl.connect(tp, tsff->clock_pin, nl.pi_net(clk));
  const NetId q = nl.add_net("q");
  nl.connect(tp, tsff->output_pin, q);
  nl.add_primary_output("po", q);

  SequentialSim sim(nl);
  std::vector<Word> po;
  sim.step({~Word{0}, 0, 0, 0}, po);  // application mode, d=1
  std::printf("application mode, D=1 -> Q=%d (expected 1: transparent)\n",
              po[0] & 1 ? 1 : 0);
  sim.step({0, 0, 0, 0}, po);
  std::printf("application mode, D=0 -> Q=%d (expected 0)\n", po[0] & 1 ? 1 : 0);
  std::printf("\nFull mode-by-mode validation lives in tests/tpi/tsff_modes_test.cpp\n");
  return 0;
}
