// Ablation (flow step 3): layout-driven scan chain reordering on/off.
// Reordering assigns scan cells to chains by placement region and orders
// them with a nearest-neighbour tour, minimising scan routing (§3.2).
#include "bench_common.hpp"

int main() {
  using namespace tpi;
  using namespace tpi::bench;
  setup_logging();

  std::printf("=== Ablation: layout-driven scan chain reordering ===\n\n");

  // Grid: every circuit with reordering off and on (no ATPG, no STA).
  std::vector<SweepJob> jobs;
  for (const CircuitProfile& profile : bench_profiles()) {
    for (const bool reorder : {false, true}) {
      SweepJob job;
      job.label = profile.name + (reorder ? "/reorder=on" : "/reorder=off");
      job.profile = profile;
      job.options = bench_config().options;
      job.options.layout_driven_reorder = reorder;
      job.stages = StageMask::all()
                       .without(Stage::kReorderAtpg)
                       .without(Stage::kExtract)
                       .without(Stage::kSta);
      jobs.push_back(std::move(job));
    }
  }
  const SweepReport report = run_jobs(std::move(jobs));

  TextTable table({"circuit", "reorder", "scan wire(um)", "total wire(um)", "saved(%)"});
  double base_scan = 0.0;
  for (const SweepCellResult& cell : report.cells) {
    const FlowResult& r = cell.result;
    const bool reorder = cell.job.options.layout_driven_reorder;
    if (!reorder) base_scan = r.scan_wire_length_um;
    table.add_row({cell.job.profile.name, reorder ? "on" : "off",
                   fmt_int(static_cast<long long>(r.scan_wire_length_um)),
                   fmt_int(static_cast<long long>(r.wire_length_um)),
                   reorder ? fmt_fixed(100.0 * (base_scan - r.scan_wire_length_um) /
                                           base_scan,
                                       1)
                           : std::string("-")});
    if (reorder) table.add_separator();
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Step 3 of the paper's flow exists precisely because netlist-order\n"
              "stitching wastes wirelength: \"scan flip-flops are assigned to scan\n"
              "chains using cell placement information, such that the wire length\n"
              "for the scan chains is minimized.\"\n");
  return 0;
}
