// Ablation (flow step 3): layout-driven scan chain reordering on/off.
// Reordering assigns scan cells to chains by placement region and orders
// them with a nearest-neighbour tour, minimising scan routing (§3.2).
#include "bench_common.hpp"

int main() {
  using namespace tpi;
  using namespace tpi::bench;
  setup_logging();

  std::printf("=== Ablation: layout-driven scan chain reordering ===\n\n");

  const auto lib = make_phl130_library();
  TextTable table({"circuit", "reorder", "scan wire(um)", "total wire(um)", "saved(%)"});
  for (const CircuitProfile& profile : bench_profiles()) {
    double base_scan = 0.0;
    for (const bool reorder : {false, true}) {
      FlowOptions opts;
      opts.layout_driven_reorder = reorder;
      opts.run_atpg = false;
      opts.run_sta = false;
      std::fprintf(stderr, "[bench] %s reorder=%d...\n", profile.name.c_str(), reorder);
      const FlowResult r = run_flow(*lib, profile, opts);
      if (!reorder) base_scan = r.scan_wire_length_um;
      table.add_row({profile.name, reorder ? "on" : "off",
                     fmt_int(static_cast<long long>(r.scan_wire_length_um)),
                     fmt_int(static_cast<long long>(r.wire_length_um)),
                     reorder ? fmt_fixed(100.0 * (base_scan - r.scan_wire_length_um) /
                                             base_scan,
                                         1)
                             : std::string("-")});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Step 3 of the paper's flow exists precisely because netlist-order\n"
              "stitching wastes wirelength: \"scan flip-flops are assigned to scan\n"
              "chains using cell placement information, such that the wire length\n"
              "for the scan chains is minimized.\"\n");
  return 0;
}
