// Ablation (§5 / Cheng & Lin [2]): timing-driven TPI. A pre-TPI layout and
// timing analysis identify nets with small slack; test points are excluded
// from them. The paper argues this is feasible but trades away part of the
// fault-coverage / pattern-count gain — quantified here.
#include "bench_common.hpp"

int main() {
  using namespace tpi;
  using namespace tpi::bench;
  setup_logging();

  std::printf("=== Ablation: timing-driven TPI (exclude small-slack nets) ===\n\n");

  const CircuitProfile profile = bench_profiles().front();  // s38417

  struct Case {
    const char* name;
    double pct;
    bool timing_driven;
  };
  const Case cases[] = {
      {"no TP", 0.0, false},
      {"plain TPI 2%", 2.0, false},
      {"timing-driven TPI 2%", 2.0, true},
  };
  std::vector<SweepJob> jobs;
  for (const Case& c : cases) {
    SweepJob job;
    job.label = c.name;
    job.profile = profile;
    job.options = bench_config().options;
    job.options.tp_percent = c.pct;
    job.options.timing_driven_tpi = c.timing_driven;
    job.options.timing_exclude_slack_ps = 1500.0;
    jobs.push_back(std::move(job));
  }
  const SweepReport report = run_jobs(std::move(jobs));

  TextTable table({"mode", "#TP", "#TP_cp", "T_cp(ps)", "dTcp vs none(%)",
                   "SAF patterns", "FC(%)"});
  const double base_tcp = report.cells.front().result.sta.worst.t_cp_ps;
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const FlowResult& r = report.cells[i].result;
    table.add_row({cases[i].name, fmt_int(r.num_test_points),
                   fmt_int(r.sta.worst.test_points_on_path),
                   fmt_int(static_cast<long long>(r.sta.worst.t_cp_ps)),
                   cases[i].pct == 0.0
                       ? std::string("-")
                       : fmt_fixed(100.0 * (r.sta.worst.t_cp_ps - base_tcp) /
                                       base_tcp,
                                   2),
                   fmt_int(r.saf_patterns), fmt_fixed(r.fault_coverage_pct, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("§5: \"excluding test points from critical paths lowers the positive\n"
              "effects of TPI on fault coverage and test data\" — the timing-driven\n"
              "row keeps #TP_cp at zero but gives back part of the pattern-count\n"
              "and coverage gain relative to unconstrained TPI.\n");
  return 0;
}
