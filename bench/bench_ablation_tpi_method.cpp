// Ablation (§3.1): the hybrid TPI cost function against its COP-only and
// SCOAP-only components. The analysis outcome chooses the method in the
// Philips CAT flow; here all three run on the same circuit to show why the
// hybrid (gain-driven) selection wins on compact pattern count.
#include "bench_common.hpp"

int main() {
  using namespace tpi;
  using namespace tpi::bench;
  setup_logging();

  std::printf("=== Ablation: TPI selection method (hybrid vs COP vs SCOAP) ===\n\n");

  // Use the s38417 profile at 2% test points — enough to cover the gated
  // hard regions when the selector aims well.
  const CircuitProfile profile = bench_profiles().front();

  struct MethodCase {
    const char* name;
    TpiMethod method;
    double pct;
  };
  const MethodCase cases[] = {
      {"none", TpiMethod::kHybrid, 0.0},
      {"hybrid", TpiMethod::kHybrid, 2.0},
      {"cop", TpiMethod::kCop, 2.0},
      {"scoap", TpiMethod::kScoap, 2.0},
  };
  std::vector<SweepJob> jobs;
  for (const MethodCase& mc : cases) {
    SweepJob job;
    job.label = std::string(profile.name) + "/method=" + mc.name;
    job.profile = profile;
    job.options = bench_config().options;
    job.options.tp_percent = mc.pct;
    job.options.tpi_method = mc.method;
    job.stages = StageMask::all().without(Stage::kExtract).without(Stage::kSta);
    jobs.push_back(std::move(job));
  }
  const SweepReport report = run_jobs(std::move(jobs));

  TextTable table({"method", "#TP", "FC(%)", "FE(%)", "SAF patterns", "dec. vs none(%)"});
  const int base_patterns = report.cells.front().result.saf_patterns;
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const FlowResult& r = report.cells[i].result;
    table.add_row({cases[i].name, fmt_int(r.num_test_points),
                   fmt_fixed(r.fault_coverage_pct, 2),
                   fmt_fixed(r.fault_efficiency_pct, 2), fmt_int(r.saf_patterns),
                   cases[i].pct == 0.0
                       ? std::string("-")
                       : fmt_fixed(100.0 * (base_patterns - r.saf_patterns) /
                                       static_cast<double>(base_patterns),
                                   2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("The hybrid selector evaluates the explicit testability *gain* of a\n"
              "candidate (Seiss-style gradient), so it finds the rare gating\n"
              "enables; raw COP/SCOAP hardness chases unreachable tree internals\n"
              "and buys far less pattern-count reduction per test point.\n");
  return 0;
}
