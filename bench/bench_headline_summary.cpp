// Reproduces the paper's headline claim (abstract / §6): "inserting 1% test
// points in general increases the silicon area after layout by less than
// 0.5% while the performance of the circuit may be reduced by 5% or more",
// and both area and critical-path delay grow nearly linearly with #TP.
#include "bench_common.hpp"

int main() {
  using namespace tpi;
  using namespace tpi::bench;
  setup_logging();

  std::printf("=== Headline: 1%% test points vs silicon area and performance ===\n\n");

  TextTable table({"circuit", "chip @1%TP(%)", "chip @5%TP(%)", "Tcp @1%TP(%)",
                   "Tcp @5%TP(%)", "area R^2", "Tcp R^2"});
  SweepReport report;
  for (const SweepResult& sweep : run_grid(StageMask::all().without(Stage::kReorderAtpg), &report)) {
    const CircuitProfile& profile = sweep.profile;
    const FlowResult& base = sweep.runs.front();
    auto pct = [&](double now, double then) { return 100.0 * (now - then) / then; };
    const LinearFit area_fit =
        linearity(sweep, [](const FlowResult& r) { return r.chip_area_um2; });
    const LinearFit tcp_fit =
        linearity(sweep, [](const FlowResult& r) { return r.sta.worst.t_cp_ps; });
    table.add_row(
        {profile.name,
         fmt_fixed(pct(sweep.runs[1].chip_area_um2, base.chip_area_um2), 2),
         fmt_fixed(pct(sweep.runs[5].chip_area_um2, base.chip_area_um2), 2),
         fmt_fixed(pct(sweep.runs[1].sta.worst.t_cp_ps, base.sta.worst.t_cp_ps), 2),
         fmt_fixed(pct(sweep.runs[5].sta.worst.t_cp_ps, base.sta.worst.t_cp_ps), 2),
         fmt_fixed(area_fit.r_squared, 3), fmt_fixed(tcp_fit.r_squared, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Per-stage wall-clock totals over the %zu-run grid:\n%s\n",
              report.cells.size(), stage_totals_table(report).c_str());
  std::printf(
      "Expected shape (§6): chip-area cost of 1%% TP below ~0.5%%; delay cost\n"
      "noisier, possibly >=5%% (layouts are regenerated from scratch, so both\n"
      "signs occur at a single point while the trend over 0-5%% is upward and\n"
      "nearly linear — high R^2 on the area fit, looser on delay).\n");
  return 0;
}
