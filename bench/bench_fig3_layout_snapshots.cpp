// Reproduces Fig. 3: layout after (a) floorplanning, (b) placement and
// (c) routing — written as SVG files plus a terminal summary of each stage.
#include "bench_common.hpp"
#include "circuits/generator.hpp"
#include "layout/clock_tree.hpp"
#include "layout/svg.hpp"
#include "scan/scan.hpp"
#include "tpi/tpi.hpp"

int main() {
  using namespace tpi;
  using namespace tpi::bench;
  setup_logging();
  const auto lib = make_phl130_library();

  std::printf("=== Figure 3: layout after floorplanning / placement / routing ===\n\n");

  // Use the s38417 profile (scaled) with 2% test points so TSFFs show up
  // red in the placement snapshot.
  CircuitProfile profile = bench_profiles().front();
  auto nl = generate_circuit(*lib, profile);
  TpiOptions tpi_opts;
  tpi_opts.num_test_points =
      static_cast<int>(0.02 * static_cast<double>(nl->flip_flops().size()));
  insert_test_points(*nl, tpi_opts);
  ScanOptions scan_opts;
  scan_opts.max_chain_length = profile.max_chain_length;
  scan_opts.max_chains = profile.max_chains;
  insert_scan(*nl, scan_opts);

  FloorplanOptions fpo;
  fpo.target_row_utilization = profile.target_row_utilization;
  const Floorplan fp = make_floorplan(*nl, fpo);
  std::printf("(a) floorplan: %d rows x %.0f um, core %.0f x %.0f um, chip %.0f x %.0f um\n",
              fp.num_rows, fp.row_length_um, fp.core_box.width(), fp.core_box.height(),
              fp.chip_box.width(), fp.chip_box.height());
  write_layout_svg("fig3a_floorplan.svg", *nl, fp, nullptr, nullptr,
                   LayoutStage::kFloorplan);

  Placement pl = place(*nl, fp, {});
  const ChainPlan plan = plan_chains(*nl, scan_opts, [&] {
    std::vector<std::pair<double, double>> pos(nl->num_cells());
    for (std::size_t c = 0; c < pos.size(); ++c) pos[c] = {pl.pos[c].x, pl.pos[c].y};
    return pos;
  }());
  stitch_chains(*nl, plan);
  synthesize_clock_trees(*nl, fp, pl, {});
  const FillerReport fillers = insert_fillers(*nl, fp, pl);
  std::printf("(b) placement: %zu cells placed, HPWL %.0f um, %d filler cells\n",
              nl->num_cells(), pl.total_hpwl(*nl), fillers.cells_added);
  write_layout_svg("fig3b_placement.svg", *nl, fp, &pl, nullptr, LayoutStage::kPlacement);

  assign_io_pads(*nl, fp, pl);
  const RoutingResult routes = route(*nl, fp, pl);
  std::printf("(c) routing: total wire length %.0f um (%.0f um detours, %d overflows)\n",
              routes.total_wire_length_um, routes.detour_length_um,
              routes.overflowed_crossings);
  write_layout_svg("fig3c_routing.svg", *nl, fp, &pl, &routes, LayoutStage::kRouted);

  std::printf("\nwrote fig3a_floorplan.svg, fig3b_placement.svg, fig3c_routing.svg\n"
              "legend: grey=logic, blue=flip-flops, red=test points,\n"
              "green=clock buffers, light grey=fillers; rings: IO/power/ground\n");
  return 0;
}
