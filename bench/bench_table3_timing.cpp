// Reproduces Table 3 ("Impact of TPI on timing"): per circuit (and per
// clock domain for circuit1), the critical-path delay T_cp with its
// increase over the 0%-TP layout, F_max, the eq. (3) decomposition
// T_wires / T_intrinsic / T_load-dep / T_setup / T_skew, the number of test
// points on the critical path (#TP_cp) and the slow-node count (§4.4).
#include "bench_common.hpp"

namespace {

using namespace tpi;

const CriticalPath* domain_path(const FlowResult& r, std::size_t domain) {
  if (domain >= r.sta.per_domain.size()) return nullptr;
  const CriticalPath& cp = r.sta.per_domain[domain];
  return cp.valid ? &cp : nullptr;
}

}  // namespace

int main() {
  using namespace tpi;
  using namespace tpi::bench;
  setup_logging();

  std::printf("=== Table 3: impact of TPI on timing ===\n");
  std::printf("(scale=%.2f; static timing in application mode, worst-case PTV,\n"
              " TSFF test-mode CK->Q arcs blocked as false paths, slow nodes\n"
              " = cells with table lookups outside the characterised range)\n\n",
              bench_scale());

  TextTable table({"circuit", "dom", "#TP", "#TP_cp", "T_cp(ps)", "inc.(%)",
                   "F_max(MHz)", "T_wires", "T_intr", "T_load", "T_setup", "T_skew",
                   "slow"});

  SweepReport report;
  for (const SweepResult& sweep : run_grid(StageMask::all().without(Stage::kReorderAtpg), &report)) {
    const CircuitProfile& profile = sweep.profile;
    const std::size_t domains = sweep.runs.front().sta.per_domain.size();
    for (std::size_t d = 0; d < domains; ++d) {
      const CriticalPath* base = domain_path(sweep.runs.front(), d);
      for (std::size_t i = 0; i < sweep.runs.size(); ++i) {
        const FlowResult& r = sweep.runs[i];
        const CriticalPath* cp = domain_path(r, d);
        if (cp == nullptr || base == nullptr) continue;
        table.add_row({r.circuit, fmt_int(static_cast<long long>(d)),
                       fmt_int(r.num_test_points), fmt_int(cp->test_points_on_path),
                       fmt_int(static_cast<long long>(cp->t_cp_ps)),
                       delta_pct(cp->t_cp_ps, base->t_cp_ps, i == 0),
                       fmt_fixed(cp->fmax_mhz(), 1),
                       fmt_int(static_cast<long long>(cp->t_wires_ps)),
                       fmt_int(static_cast<long long>(cp->t_intrinsic_ps)),
                       fmt_int(static_cast<long long>(cp->t_load_dep_ps)),
                       fmt_int(static_cast<long long>(cp->t_setup_ps)),
                       fmt_int(static_cast<long long>(cp->t_skew_ps)),
                       fmt_int(r.sta.slow_nodes)});
      }
      table.add_separator();
    }

    const LinearFit fit = linearity(
        sweep, [](const FlowResult& r) { return r.sta.worst.t_cp_ps; });
    std::fprintf(stderr, "[check] %s: T_cp vs #TP slope %.2f ps/TP (R^2=%.3f)\n",
                 profile.name.c_str(), fit.slope, fit.r_squared);

    // Per-domain frequency requirements (§4.4).
    for (std::size_t d = 0; d < domains && d < profile.domain_period_ps.size(); ++d) {
      const double req = profile.domain_period_ps[d];
      if (req <= 0) continue;
      for (std::size_t i = 0; i < sweep.runs.size(); ++i) {
        const CriticalPath* cp = domain_path(sweep.runs[i], d);
        if (cp == nullptr) continue;
        if (cp->t_cp_ps > req) {
          std::fprintf(stderr,
                       "[check] %s dom%zu @%zu%%TP misses the %.1f MHz target "
                       "(T_cp %.0f ps)\n",
                       profile.name.c_str(), d, i, 1e6 / req, cp->t_cp_ps);
        }
      }
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::fprintf(stderr, "[timing] per-stage totals:\n%s", stage_totals_table(report).c_str());
  std::printf("Paper claims reproduced:\n"
              "  * T_cp grows roughly linearly with the number of test points;\n"
              "    layout noise can make individual layouts faster (§4.4)\n"
              "  * cell delay (intrinsic + load-dependent) dominates T_cp (§4.4)\n"
              "  * different paths become critical in different layouts; test\n"
              "    points appear on the critical path as #TP grows (#TP_cp)\n"
              "  * slow nodes (extrapolated lookups) are present and unresolved,\n"
              "    so absolute numbers are comparisons, not sign-off (§4.4)\n");
  return 0;
}
