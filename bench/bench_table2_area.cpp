// Reproduces Table 2 ("Impact of TPI on silicon area"): #cells, #rows,
// L_rows, core area (+increase), filler-cell area %, chip area (+increase)
// and total wire length, per circuit and test-point percentage — plus the
// §4.3 linearity check (core/chip area grow nearly linearly with #TP).
#include "bench_common.hpp"

int main() {
  using namespace tpi;
  using namespace tpi::bench;
  setup_logging();

  std::printf("=== Table 2: impact of TPI on silicon area ===\n");
  std::printf("(scale=%.2f; square floorplan, fixed target row utilization,\n"
              " area-only optimisation, layouts generated from scratch per row)\n\n",
              bench_scale());

  TextTable table({"circuit", "#TP", "#cells", "#rows", "L_rows(um)", "core(um^2)",
                   "inc.(%)", "filler(%)", "chip(um^2)", "inc.(%)", "L_wires(um)",
                   "aspect"});

  SweepReport report;
  for (const SweepResult& sweep : run_grid(StageMask::all()
                                             .without(Stage::kReorderAtpg)
                                             .without(Stage::kExtract)
                                             .without(Stage::kSta),
                                         &report)) {
    const CircuitProfile& profile = sweep.profile;
    const FlowResult& base = sweep.runs.front();
    for (std::size_t i = 0; i < sweep.runs.size(); ++i) {
      const FlowResult& r = sweep.runs[i];
      table.add_row({r.circuit, fmt_int(r.num_test_points), fmt_int(r.num_cells),
                     fmt_int(r.num_rows), fmt_int(static_cast<long long>(r.total_row_length_um)),
                     fmt_int(static_cast<long long>(r.core_area_um2)),
                     delta_pct(r.core_area_um2, base.core_area_um2, i == 0),
                     fmt_fixed(r.filler_area_pct, 2),
                     fmt_int(static_cast<long long>(r.chip_area_um2)),
                     delta_pct(r.chip_area_um2, base.chip_area_um2, i == 0),
                     fmt_int(static_cast<long long>(r.wire_length_um)),
                     fmt_fixed(r.aspect_ratio, 2)});
    }
    table.add_separator();

    const LinearFit core_fit =
        linearity(sweep, [](const FlowResult& r) { return r.core_area_um2; });
    const LinearFit chip_fit =
        linearity(sweep, [](const FlowResult& r) { return r.chip_area_um2; });
    const double one_pct_chip =
        100.0 * (sweep.runs[1].chip_area_um2 - base.chip_area_um2) / base.chip_area_um2;
    std::fprintf(stderr,
                 "[check] %s: core-area linearity R^2=%.3f, chip-area R^2=%.3f, "
                 "chip increase @1%% TP = %.2f%% (paper: <0.5%%)\n",
                 profile.name.c_str(), core_fit.r_squared, chip_fit.r_squared,
                 one_pct_chip);
  }

  std::printf("%s\n", table.to_string().c_str());
  std::fprintf(stderr, "[timing] per-stage totals:\n%s", stage_totals_table(report).c_str());
  std::printf("Paper claims reproduced:\n"
              "  * core and chip area increase nearly linearly with #TP (§4.3)\n"
              "  * inserting ~1%% test points costs <0.5%% chip area (§6)\n"
              "  * core aspect ratio stays within [0.9, 1.1] (§4.3)\n"
              "  * wire length occasionally *decreases* after TPI because each\n"
              "    layout is generated from scratch with more room (§4.3)\n");
  return 0;
}
