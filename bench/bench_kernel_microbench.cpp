// google-benchmark kernels for the flow's hot paths: testability analysis,
// fault simulation, PODEM, placement and STA. These guard the performance
// envelope that keeps the full Tables 1-3 sweeps tractable.
#include <benchmark/benchmark.h>

#include "atpg/atpg.hpp"
#include "atpg/fault_sim.hpp"
#include "circuits/generator.hpp"
#include "extraction/extraction.hpp"
#include "layout/placement.hpp"
#include "layout/routing.hpp"
#include "netlist/design_db.hpp"
#include "scan/scan.hpp"
#include "sim/seq_sim.hpp"
#include "sta/sta.hpp"
#include "tpi/tpi.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"
#include "verify/equiv.hpp"
#include "verify/miter.hpp"

namespace {

using namespace tpi;

CircuitProfile micro_profile() {
  CircuitProfile p = scaled(s38417_profile(), 0.15);
  p.name = "micro";
  return p;
}

const CellLibrary& lib() {
  static const std::unique_ptr<CellLibrary> l = make_phl130_library();
  return *l;
}

Netlist& scan_netlist_mutable() {
  static const std::unique_ptr<Netlist> nl = [] {
    auto n = generate_circuit(lib(), micro_profile());
    ScanOptions so;
    so.max_chain_length = 100;
    insert_scan(*n, so);
    return n;
  }();
  return *nl;
}

const Netlist& scan_netlist() { return scan_netlist_mutable(); }

void BM_GenerateCircuit(benchmark::State& state) {
  for (auto _ : state) {
    auto nl = generate_circuit(lib(), micro_profile());
    benchmark::DoNotOptimize(nl->num_cells());
  }
}
BENCHMARK(BM_GenerateCircuit)->Unit(benchmark::kMillisecond);

void BM_TestabilityAnalysis(benchmark::State& state) {
  const CombModel model(scan_netlist(), SeqView::kCapture);
  for (auto _ : state) {
    const TestabilityResult t = analyze_testability(model);
    benchmark::DoNotOptimize(t.p1.size());
  }
}
BENCHMARK(BM_TestabilityAnalysis)->Unit(benchmark::kMillisecond);

void BM_GoodSimulationBatch(benchmark::State& state) {
  const CombModel model(scan_netlist(), SeqView::kCapture);
  ParallelSim sim(model);
  Rng rng(1);
  std::vector<Word> words(model.input_nets().size());
  for (auto _ : state) {
    for (auto& w : words) w = rng.next_u64();
    sim.load_inputs(words);
    sim.run();
    benchmark::DoNotOptimize(sim.values().back());
  }
}
BENCHMARK(BM_GoodSimulationBatch)->Unit(benchmark::kMicrosecond);

void BM_FaultSimulationBatch(benchmark::State& state) {
  const CombModel model(scan_netlist(), SeqView::kCapture);
  FaultSimulator fsim(model);
  FaultList fl = build_fault_list(model);
  Rng rng(2);
  std::vector<Word> words(model.input_nets().size());
  for (auto& w : words) w = rng.next_u64();
  fsim.load_batch(words);
  // Grade a rotating window of faults per iteration.
  std::size_t cursor = 0;
  for (auto _ : state) {
    Word acc = 0;
    for (int i = 0; i < 256; ++i) {
      acc |= fsim.detects(fl.faults[cursor]);
      cursor = (cursor + 1) % fl.faults.size();
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FaultSimulationBatch)->Unit(benchmark::kMicrosecond);

// Grading workload: the scan netlist plus *unobservable* monitor logic —
// 256 independent inverters, each tapping a primary input and driving a
// net nothing reads. A full-scan capture model observes every net
// (num_observable_cone_nets == num_nets), so without this stub the cone
// filter legitimately never fires and cone_skip_pct reads 0.0 at every
// job count; the dead taps make the bench exercise (and keep guarding)
// the observability cut the way real designs with debug/monitor logic do.
// Independent single-gate cones resist fault-equivalence collapsing, so
// each contributes its faults to the graded list (a long chain would
// collapse to a couple of representatives).
Netlist& grade_netlist_mutable() {
  static const std::unique_ptr<Netlist> nl = [] {
    auto n = std::make_unique<Netlist>(scan_netlist());
    const CellSpec* inv = lib().gate(CellFunc::kInv, 1);
    const int in_pin = inv->find_pin("A");
    const int npis = static_cast<int>(n->num_pis());
    for (int i = 0; i < 256; ++i) {
      const CellId c = n->add_cell(inv, "deadmon_u" + std::to_string(i));
      const NetId out = n->add_net("deadmon_n" + std::to_string(i));
      n->connect(c, in_pin, n->pi_net(i % npis));
      n->connect(c, inv->output_pin, out);
    }
    return n;
  }();
  return *nl;
}

const Netlist& grade_netlist() { return grade_netlist_mutable(); }

// The ATPG inner loop proper: grade the whole live fault list against a
// fixed budget of 512 patterns per iteration through FaultSimBank — one
// 512-lane wide batch, the same logical work the scalar substrate did as
// 8 sequential 64-pattern batches (items_per_second stays in 64-pattern
// fault-grade units for comparability). Arg = fault-sim worker threads
// (results are bit-identical across args; only the wall clock moves).
void BM_FaultGradeLive(benchmark::State& state) {
  const CombModel model(grade_netlist(), SeqView::kCapture);
  FaultSimBank bank(model, static_cast<int>(state.range(0)));
  bank.configure_lanes(kMaxLaneWords);
  FaultList fl = build_fault_list(model);
  std::vector<Fault*> live;
  for (Fault& f : fl.faults) {
    if (f.status != FaultStatus::kScanTested) live.push_back(&f);
  }
  Rng rng(2);
  std::vector<Word> words(model.input_nets().size() *
                          static_cast<std::size_t>(kMaxLaneWords));
  std::vector<Word> detect;
  for (auto _ : state) {
    for (auto& w : words) w = rng.next_u64();
    bank.load_batch(words);
    bank.grade(live, detect);
    benchmark::DoNotOptimize(detect.data());
  }
  state.SetItemsProcessed(state.iterations() * kMaxLaneWords *
                          static_cast<std::int64_t>(live.size()));
  state.counters["live_faults"] = static_cast<double>(live.size());
  const FaultSimStats s = bank.take_stats();
  state.counters["cone_skip_pct"] =
      s.faults_graded > 0 ? 100.0 * static_cast<double>(s.cone_skips) /
                                static_cast<double>(s.faults_graded)
                          : 0.0;
}
BENCHMARK(BM_FaultGradeLive)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Whole ATPG stage (all three phases) on the largest generated profile the
// microbench uses — the single-circuit wall clock the sweep cannot hide.
// Arg = AtpgOptions::jobs.
void BM_AtpgStage(benchmark::State& state) {
  const CombModel model(scan_netlist(), SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  AtpgOptions opts;
  opts.jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const AtpgResult r = run_atpg(model, t, opts);
    benchmark::DoNotOptimize(r.detected);
  }
}
BENCHMARK(BM_AtpgStage)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// DesignDB cache effect, cold side: a fresh database per iteration pays
// the full levelize + CombModel compile + testability analysis — what
// every consumer paid per stage before the cache existed.
void BM_DesignDbColdRebuild(benchmark::State& state) {
  Netlist& nl = scan_netlist_mutable();
  for (auto _ : state) {
    DesignDB db(nl);
    const TestabilityResult& t = db.testability(SeqView::kCapture);
    benchmark::DoNotOptimize(t.p1.size());
  }
  state.counters["rebuilds_per_iter"] = 3;  // topo + comb + testability
}
BENCHMARK(BM_DesignDbColdRebuild)->Unit(benchmark::kMillisecond);

// Cached side: the netlist is unedited between iterations, so every access
// is a version-check hit. The cold/cached gap is the per-stage saving the
// flow engine banks whenever a stage boundary carries no netlist edit.
void BM_DesignDbCachedReuse(benchmark::State& state) {
  DesignDB db(scan_netlist_mutable());
  db.testability(SeqView::kCapture);  // warm all three views
  for (auto _ : state) {
    const CombModel& model = db.comb_model(SeqView::kCapture);
    const TestabilityResult& t = db.testability(SeqView::kCapture);
    benchmark::DoNotOptimize(model.num_nets());
    benchmark::DoNotOptimize(t.p1.size());
  }
  state.counters["view_hits"] = static_cast<double>(db.counters().view_hits);
}
BENCHMARK(BM_DesignDbCachedReuse);

void BM_PodemPerFault(benchmark::State& state) {
  const CombModel model(scan_netlist(), SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  FaultList fl = build_fault_list(model);
  Podem podem(model, t, {});
  std::size_t cursor = 0;
  for (auto _ : state) {
    while (fl.faults[cursor].status == FaultStatus::kScanTested) {
      cursor = (cursor + 1) % fl.faults.size();
    }
    benchmark::DoNotOptimize(podem.generate(fl.faults[cursor]).outcome);
    cursor = (cursor + 1) % fl.faults.size();
  }
}
BENCHMARK(BM_PodemPerFault)->Unit(benchmark::kMicrosecond);

void BM_GlobalPlacement(benchmark::State& state) {
  const Netlist& nl = scan_netlist();
  const Floorplan fp = make_floorplan(nl, {});
  for (auto _ : state) {
    const Placement pl = place(nl, fp, {});
    benchmark::DoNotOptimize(pl.row_used_um.size());
  }
}
BENCHMARK(BM_GlobalPlacement)->Unit(benchmark::kMillisecond);

void BM_GlobalRouting(benchmark::State& state) {
  const Netlist& nl = scan_netlist();
  const Floorplan fp = make_floorplan(nl, {});
  const Placement pl = place(nl, fp, {});
  for (auto _ : state) {
    const RoutingResult r = route(nl, fp, pl);
    benchmark::DoNotOptimize(r.total_wire_length_um);
  }
}
BENCHMARK(BM_GlobalRouting)->Unit(benchmark::kMillisecond);

void BM_StaFullPass(benchmark::State& state) {
  const Netlist& nl = scan_netlist();
  const Floorplan fp = make_floorplan(nl, {});
  const Placement pl = place(nl, fp, {});
  const RoutingResult routes = route(nl, fp, pl);
  const ExtractionResult px = extract(nl, routes);
  for (auto _ : state) {
    const StaResult sta = run_sta(nl, px);
    benchmark::DoNotOptimize(sta.worst.t_cp_ps);
  }
}
BENCHMARK(BM_StaFullPass)->Unit(benchmark::kMillisecond);

// Verification kernels: the miter's cost is two circuit copies plus the
// XOR/OR reduction, stepped 64 lanes at a time; the bounded unroll is the
// expensive engine of EquivChecker (paired random initial states).
const Netlist& miter_netlist() {
  static const std::unique_ptr<Netlist> m = [] {
    auto golden = generate_circuit(lib(), micro_profile());
    Netlist mutant = *golden;
    {
      DesignDB db(mutant);
      TpiOptions tpi;
      tpi.num_test_points = 10;
      insert_test_points(db, tpi);
    }
    ScanOptions so;
    so.max_chain_length = 100;
    insert_scan(mutant, so);
    stitch_chains(mutant, plan_chains(mutant, so, {}));
    MiterResult res = build_miter(*golden, mutant);
    return std::move(res.netlist);
  }();
  return *m;
}

// One iteration = 512 lane-frames (8 sequential 64-lane steps on the
// scalar substrate; one 512-lane wide step on the SIMD one), so pre/post
// numbers compare equal logical work.
void BM_MiterSim(benchmark::State& state) {
  SequentialSim sim(miter_netlist(), kMaxLaneWords);
  Rng rng(0xB17E);
  std::vector<Word> pi(sim.model().num_pi_inputs() *
                       static_cast<std::size_t>(kMaxLaneWords));
  std::vector<Word> po;
  for (auto _ : state) {
    for (Word& w : pi) w = rng.next_u64();
    sim.step(pi, po);
    benchmark::DoNotOptimize(po.data());
  }
}
BENCHMARK(BM_MiterSim)->Unit(benchmark::kMicrosecond);

// 8 unroll rounds x 8 frames = 4096 lane-frames per check() — one lockstep
// group at full lane width on the SIMD substrate.
void BM_BoundedUnroll(benchmark::State& state) {
  EquivOptions opts;
  opts.random_rounds = 0;  // isolate the unroll engine
  opts.unroll_rounds = 8;
  opts.unroll_frames = 8;
  opts.ternary_frames = 0;
  EquivChecker checker(miter_netlist(), opts);
  for (auto _ : state) {
    const EquivResult res = checker.check();
    benchmark::DoNotOptimize(res.frames_simulated);
  }
}
BENCHMARK(BM_BoundedUnroll)->Unit(benchmark::kMillisecond);

// Observability overhead guards: a disabled span must cost about one
// branch (< 5 ns), an enabled one a couple of clock reads plus a
// lock-free append (< 100 ns).
void BM_SpanOverheadDisabled(benchmark::State& state) {
  set_trace_enabled(false);
  for (auto _ : state) {
    TPI_SPAN("bench.disabled");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanOverheadDisabled);

void BM_SpanOverheadEnabled(benchmark::State& state) {
  trace_reset();
  set_trace_enabled(true);
  for (auto _ : state) {
    TPI_SPAN("bench.enabled");
    benchmark::ClobberMemory();
  }
  set_trace_enabled(false);
  trace_reset();  // ~48 B/event: cap the resident growth across repetitions
}
// Fixed iteration count bounds the event log (~2M * 48 B ≈ 96 MB peak)
// instead of letting the auto-tuner scale a ns-range op into the billions.
BENCHMARK(BM_SpanOverheadEnabled)->Iterations(2'000'000);

}  // namespace

BENCHMARK_MAIN();
