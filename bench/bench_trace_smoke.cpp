// End-to-end smoke check of the observability layer, run under ctest with
// TPI_TRACE set: executes one scaled-down flow with a TracingFlowObserver
// attached and parallel fault simulation enabled, writes the Chrome trace
// JSON, then re-reads and validates it — well-formed JSON, complete "X"
// events, the stage and kernel span names present — and checks the
// FlowResult metrics snapshot carries the expected counters. A second
// section runs 4 concurrent flows, each under its own per-job TraceSink,
// and asserts every sink's JSON carries only its own job's spans (the
// concurrent-trace-clobbering regression check; the TSan build makes it a
// data-race check too). Exits non-zero on the first failed check so the
// ctest target fails loudly.
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "circuits/generator.hpp"
#include "flow/flow.hpp"
#include "flow/trace_observer.hpp"
#include "util/json_check.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace {

int g_failures = 0;

void check(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "[trace_smoke] FAIL: %s\n", what);
  ++g_failures;
}

std::string read_file(const std::string& path) {
  std::string out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

}  // namespace

int main() {
  using namespace tpi;
  set_log_level_from_env(LogLevel::kWarn);

  // Under ctest TPI_TRACE points at trace_smoke.json; standalone runs get
  // the same behaviour with an explicit enable + write below.
  const char* env_path = trace_init_from_env();
  const std::string path = env_path != nullptr ? env_path : "trace_smoke.json";
  if (env_path == nullptr) set_trace_enabled(true);

  FlowOptions opts;
  opts.tp_percent = 2.0;
  opts.atpg.jobs = 2;  // fault-sim workers: spans must appear off-main-thread
  const CircuitProfile profile = scaled(s38417_profile(), 0.05);
  const std::unique_ptr<CellLibrary> lib = make_phl130_library();

  TracingFlowObserver observer;
  FlowEngine engine(*lib, profile, opts);
  engine.set_observer(&observer);
  const FlowResult& res = engine.run();

  check(observer.stages_begun() == 6, "observer saw 6 stage begins");
  check(observer.stages_ended() == 6, "observer saw 6 stage ends");
  check(trace_event_count() > 0, "spans were recorded");
  check(!res.metrics.empty(), "FlowResult carries a metrics snapshot");
  check(res.metrics.find("atpg.sim.faults_graded") != nullptr,
        "atpg.sim.faults_graded metric present");
  check(res.metrics.find("routing.net_length_um") != nullptr,
        "routing.net_length_um histogram present");

  check(trace_write_json(path), "trace JSON written");
  const std::string json = read_file(path);
  check(!json.empty(), "trace file readable and non-empty");
  std::string error;
  if (!json_well_formed(json, &error)) {
    std::fprintf(stderr, "[trace_smoke] FAIL: malformed JSON: %s\n", error.c_str());
    ++g_failures;
  }
  check(contains(json, "\"traceEvents\""), "traceEvents array present");
  check(contains(json, "\"ph\": \"X\""), "complete (\"X\") events present");
  for (const char* name : {"tpi_scan", "floorplan_place", "reorder_atpg", "eco",
                           "extract", "sta", "atpg.podem", "atpg.grade_chunk",
                           "placement.global", "routing.route"}) {
    if (!contains(json, name)) {
      std::fprintf(stderr, "[trace_smoke] FAIL: span \"%s\" missing from trace\n", name);
      ++g_failures;
    }
  }

  // ---- per-job flight recorders: 4 concurrent traced flows ----
  // Each job runs under its own ScopedTraceSink; before the fix every
  // traced job interleaved into the one global TPI_TRACE log.
  {
    constexpr int kJobs = 4;
    static const char* kMarkers[kJobs] = {"marker.job0", "marker.job1",
                                          "marker.job2", "marker.job3"};
    std::vector<std::unique_ptr<TraceSink>> sinks;
    for (int j = 0; j < kJobs; ++j) {
      sinks.push_back(std::make_unique<TraceSink>(
          static_cast<std::uint64_t>(j + 1), "job" + std::to_string(j)));
    }
    const CircuitProfile small = scaled(s38417_profile(), 0.02);
    {
      ThreadPool pool(kJobs);
      std::vector<std::future<void>> done;
      for (int j = 0; j < kJobs; ++j) {
        done.push_back(pool.submit([&, j] {
          ScopedTraceSink scope(*sinks[static_cast<std::size_t>(j)]);
          trace_instant(kMarkers[j]);
          FlowOptions o = opts;
          o.atpg.jobs = 1;  // inner-pool spans would land in the global log
          FlowEngine e(*lib, small, o);
          e.run();
        }));
      }
      for (std::future<void>& f : done) f.get();
    }
    for (int j = 0; j < kJobs; ++j) {
      const TraceSink& sink = *sinks[static_cast<std::size_t>(j)];
      check(sink.event_count() > 0, "per-job sink captured spans");
      const std::string sink_json = sink.to_json();
      std::string sink_error;
      if (!json_well_formed(sink_json, &sink_error)) {
        std::fprintf(stderr, "[trace_smoke] FAIL: job %d sink JSON malformed: %s\n",
                     j, sink_error.c_str());
        ++g_failures;
      }
      check(contains(sink_json, "\"process_name\""), "sink has a process_name row");
      check(contains(sink_json, "tpi_scan"), "sink has the job's stage spans");
      for (int other = 0; other < kJobs; ++other) {
        const bool expect = other == j;
        if (contains(sink_json, kMarkers[other]) != expect) {
          std::fprintf(stderr,
                       "[trace_smoke] FAIL: job %d sink %s marker of job %d\n", j,
                       expect ? "is missing the" : "leaked the", other);
          ++g_failures;
        }
      }
    }
  }

  if (g_failures == 0) {
    std::fprintf(stderr, "[trace_smoke] OK: %zu events in %s\n", trace_event_count(),
                 path.c_str());
    return 0;
  }
  std::fprintf(stderr, "[trace_smoke] %d check(s) failed\n", g_failures);
  return 1;
}
