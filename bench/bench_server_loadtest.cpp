// Load-test client for the flow server (and the server_smoke ctest
// target): spawns the daemon, hammers it with concurrent clients over the
// unix socket, validates every JSON-RPC response, then asks for stats and
// a clean shutdown.
//
//   bench_server_loadtest <path-to-tpi_flow_server> [clients] [jobs-per-client]
//                         [--poll-stats]
//
// Each client submits small-scale flow jobs cycling through repeated
// (profile, tp_percent) combinations — repeats are what make the server's
// keyed design cache pay off, and the stats RPC at the end asserts
// server.cache.hits > 0. With --poll-stats a dedicated poller thread
// hammers the stats + metrics RPCs for the whole soak (telemetry
// exposition concurrent with job traffic — the snapshot-tearing check)
// and reports its poll count and latency. Exit status 0 = every response
// well formed, every job finished "done", the daemon exited 0.
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/client.hpp"
#include "util/json.hpp"
#include "util/json_check.hpp"

namespace {

std::atomic<int> g_failures{0};

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "[server_loadtest] FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

// Parse a response line and return result.<field> as a double (NaN-free
// protocol: all our numbers are finite). Fails the run when the line is
// not a valid response object.
bool response_result(const std::string& line, tpi::JsonValue& result_out) {
  std::string error;
  if (!tpi::json_well_formed(line, &error)) {
    check(false, "malformed response: " + error + " in " + line);
    return false;
  }
  const tpi::JsonParseResult parsed = tpi::json_parse(line);
  if (!parsed.ok || !parsed.value.is_object()) {
    check(false, "unparsable response: " + line);
    return false;
  }
  if (const tpi::JsonValue* err = parsed.value.find("error")) {
    check(false, "RPC error: " + err->serialise());
    return false;
  }
  const tpi::JsonValue* result = parsed.value.find("result");
  if (result == nullptr) {
    check(false, "response without result: " + line);
    return false;
  }
  result_out = *result;
  return true;
}

void run_client(const std::string& socket_path, int client_idx, int jobs) {
  tpi::FlowClient client;
  std::string error;
  if (!client.connect(socket_path, &error)) {
    check(false, "client connect: " + error);
    return;
  }
  const char* profiles[] = {"s38417", "circuit1"};
  for (int j = 0; j < jobs; ++j) {
    // Cycle a small set of repeated configs so the design cache gets hits.
    const char* profile = profiles[(client_idx + j) % 2];
    const int pct = (j % 2) * 2;
    char params[256];
    std::snprintf(params, sizeof params,
                  "{\"profile\": \"%s\", \"scale\": 0.02, \"tp_percent\": %d, "
                  "\"priority\": %d}",
                  profile, pct, j % 3);
    std::string line;
    if (!client.rpc("submit", params, &line, &error)) {
      check(false, "submit: " + error);
      return;
    }
    tpi::JsonValue result;
    if (!response_result(line, result)) return;
    const tpi::JsonValue* job_id = result.find("job");
    check(job_id != nullptr && job_id->is_number(), "submit returned a job id");
    if (job_id == nullptr) return;

    char wait_params[64];
    std::snprintf(wait_params, sizeof wait_params, "{\"job\": %.0f, \"wait\": true}",
                  job_id->as_number());
    if (!client.rpc("result", wait_params, &line, &error)) {
      check(false, "result: " + error);
      return;
    }
    if (!response_result(line, result)) return;
    const tpi::JsonValue* state = result.find("state");
    check(state != nullptr && state->is_string() && state->as_string() == "done",
          "job finished done: " + line.substr(0, 160));
    const tpi::JsonValue* flow = result.find("flow");
    check(flow != nullptr && flow->is_object(), "result carries a flow object");
    if (flow != nullptr && flow->is_object()) {
      const tpi::JsonValue* cells = flow->find("num_cells");
      check(cells != nullptr && cells->is_number() && cells->as_number() > 0,
            "flow.num_cells > 0");
      check(flow->find("metrics") != nullptr, "flow.metrics present");
    }
  }
}

// Telemetry poller (--poll-stats): one connection issuing stats + metrics
// RPCs back to back until told to stop. Runs concurrently with the job
// clients, so every snapshot it reads races live submits/completions —
// responses must still parse and be internally consistent (no tearing).
struct PollReport {
  long polls = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;
};

void run_poller(const std::string& socket_path, const std::atomic<bool>& stop,
                PollReport& report) {
  using Clock = std::chrono::steady_clock;
  tpi::FlowClient client;
  std::string error;
  if (!client.connect(socket_path, &error)) {
    check(false, "poller connect: " + error);
    return;
  }
  std::string line;
  tpi::JsonValue result;
  while (!stop.load(std::memory_order_relaxed)) {
    const auto t0 = Clock::now();
    if (!client.rpc("stats", "{}", &line, &error)) {
      check(false, "poll stats: " + error);
      return;
    }
    if (!response_result(line, result)) return;
    const tpi::JsonValue* jobs = result.find("jobs");
    check(jobs != nullptr && jobs->is_object(), "stats snapshot carries jobs");

    if (!client.rpc("metrics", "{\"format\": \"prometheus\"}", &line, &error)) {
      check(false, "poll metrics: " + error);
      return;
    }
    if (!response_result(line, result)) return;
    const tpi::JsonValue* prom = result.find("prometheus");
    check(prom != nullptr && prom->is_string(), "metrics returned exposition text");
    if (prom != nullptr && prom->is_string() && !prom->as_string().empty()) {
      check(prom->as_string().find("# TYPE tpi_") != std::string::npos,
            "exposition carries tpi_-prefixed TYPE lines");
    }

    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    ++report.polls;
    report.total_ms += ms;
    if (ms > report.max_ms) report.max_ms = ms;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: bench_server_loadtest <tpi_flow_server> [clients] [jobs] "
                 "[--poll-stats]\n");
    return 2;
  }
  const char* server_bin = argv[1];
  bool poll_stats = false;
  std::vector<const char*> positional;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--poll-stats") == 0) {
      poll_stats = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int clients = positional.size() > 0 ? std::atoi(positional[0]) : 4;
  const int jobs_per_client = positional.size() > 1 ? std::atoi(positional[1]) : 5;

  char dir_template[] = "/tmp/tpi_server_XXXXXX";
  if (::mkdtemp(dir_template) == nullptr) {
    std::perror("mkdtemp");
    return 2;
  }
  const std::string socket_path = std::string(dir_template) + "/flow.sock";

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return 2;
  }
  if (pid == 0) {
    ::execl(server_bin, server_bin, "--socket", socket_path.c_str(), "--workers", "4",
            static_cast<char*>(nullptr));
    std::perror("execl");
    std::_Exit(127);
  }

  // Wait for the daemon to bind.
  tpi::FlowClient probe;
  bool up = false;
  for (int i = 0; i < 500; ++i) {
    if (probe.connect(socket_path)) {
      up = true;
      break;
    }
    ::usleep(20 * 1000);
  }
  check(up, "server came up on " + socket_path);

  if (up) {
    std::atomic<bool> poll_stop{false};
    PollReport poll_report;
    std::thread poller;
    if (poll_stats) {
      poller = std::thread([&socket_path, &poll_stop, &poll_report] {
        run_poller(socket_path, poll_stop, poll_report);
      });
    }

    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&socket_path, c, jobs_per_client] {
        run_client(socket_path, c, jobs_per_client);
      });
    }
    for (std::thread& t : threads) t.join();

    if (poller.joinable()) {
      poll_stop.store(true);
      poller.join();
      check(poll_report.polls > 0, "poller completed at least one scrape");
      std::fprintf(stderr,
                   "[server_loadtest] poller: %ld stats+metrics polls, "
                   "mean %.2f ms, max %.2f ms\n",
                   poll_report.polls,
                   poll_report.polls > 0 ? poll_report.total_ms / poll_report.polls
                                         : 0.0,
                   poll_report.max_ms);
    }

    std::string line, error;
    tpi::JsonValue result;
    if (!probe.rpc("stats", "{}", &line, &error)) {
      check(false, "stats: " + error);
    } else if (response_result(line, result)) {
      std::fprintf(stderr, "[server_loadtest] stats: %s\n", line.c_str());
      const tpi::JsonValue* hits = result.find("server.cache.hits");
      check(hits != nullptr && hits->is_number() && hits->as_number() > 0,
            "server.cache.hits > 0 after repeated profiles");
      const tpi::JsonValue* misses = result.find("server.cache.misses");
      check(misses != nullptr && misses->is_number() && misses->as_number() <= 2,
            "dedup: at most one miss per distinct profile");
    }
    if (probe.rpc("shutdown", "{}", &line, &error)) {
      check(response_result(line, result), "shutdown acknowledged");
    } else {
      check(false, "shutdown: " + error);
    }
  }

  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) {
    std::perror("waitpid");
    ++g_failures;
  } else {
    check(WIFEXITED(status) && WEXITSTATUS(status) == 0, "daemon exited 0");
  }
  ::unlink(socket_path.c_str());
  ::rmdir(dir_template);

  const int failures = g_failures.load();
  if (failures == 0) {
    std::fprintf(stderr, "[server_loadtest] OK: %d clients x %d jobs\n", clients,
                 jobs_per_client);
    return 0;
  }
  std::fprintf(stderr, "[server_loadtest] %d check(s) failed\n", failures);
  return 1;
}
