// §2 context experiment: pseudo-random LBIST fault-coverage curves with
// and without test points. "The fault coverage achieved with pseudo-random
// patterns only is generally insufficient ... test points are therefore
// inserted to increase the detectability of these faults, which results in
// higher fault coverage." Cross-references [5][6][9][10][11] of the paper.
#include <future>

#include "bench_common.hpp"
#include "bist/lbist.hpp"
#include "circuits/generator.hpp"
#include "netlist/design_db.hpp"
#include "tpi/tpi.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace tpi;
  using namespace tpi::bench;
  setup_logging();

  std::printf("=== LBIST: pseudo-random coverage with and without test points ===\n\n");

  const auto lib = make_phl130_library();
  CircuitProfile profile = bench_profiles().front();  // s38417

  LbistOptions lbist;
  lbist.max_patterns = 16384;
  lbist.report_every = 2048;

  // The three LBIST sessions are independent: run them on the shared
  // TPI_BENCH_JOBS thread pool and collect in tp-percentage order.
  struct Session {
    int num_test_points;
    LbistResult result;
  };
  std::vector<std::future<Session>> sessions;
  {
    ThreadPool pool(static_cast<unsigned>(bench_jobs()));
    for (const double pct : {0.0, 1.0, 2.0}) {
      sessions.push_back(pool.submit([&lib, &profile, &lbist, pct] {
        // One DesignDB per session: LBIST pulls the capture model from the
        // cache (a rebuild only when the last TPI round edited the netlist).
        DesignDB db(generate_circuit(*lib, profile));
        TpiOptions tpi_opts;
        tpi_opts.num_test_points = static_cast<int>(
            pct / 100.0 * static_cast<double>(db.netlist().flip_flops().size()));
        insert_test_points(db, tpi_opts);
        std::fprintf(stderr, "[bench] LBIST with %d test points...\n",
                     tpi_opts.num_test_points);
        return Session{tpi_opts.num_test_points, run_lbist(db, lbist)};
      }));
    }
  }

  TextTable table({"#TP", "patterns", "pseudo-random FC(%)", "final FC(%)", "MISR signature"});
  std::vector<std::vector<std::pair<int, double>>> curves;
  for (std::future<Session>& fut : sessions) {
    const Session s = fut.get();
    const LbistResult& r = s.result;
    curves.push_back(r.coverage_curve);
    char sig[32];
    std::snprintf(sig, sizeof sig, "%016llx",
                  static_cast<unsigned long long>(r.signature));
    table.add_row({fmt_int(s.num_test_points), fmt_int(r.patterns_applied),
                   fmt_fixed(r.coverage_curve.front().second, 2),
                   fmt_fixed(r.final_coverage_pct, 2), sig});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("coverage curves (FC%% after N pseudo-random patterns):\n");
  TextTable curve({"patterns", "0% TP", "1% TP", "2% TP"});
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    std::vector<std::string> row{fmt_int(curves[0][i].first)};
    for (const auto& c : curves) {
      row.push_back(i < c.size() ? fmt_fixed(c[i].second, 2) : c.empty()
                        ? std::string("-")
                        : fmt_fixed(c.back().second, 2));
    }
    curve.add_row(row);
  }
  std::printf("%s\n", curve.to_string().c_str());
  std::printf("Without test points the curve saturates below the DfT target —\n"
              "pseudo-random-resistant faults are unreachable at any budget.\n"
              "Control points on the gating enables lift the plateau (§2).\n");
  return 0;
}
