// Shared driver for the paper-reproduction benches: runs the Fig. 2 flow on
// the three §4.1 circuits across 0-5% test points and formats rows in the
// layout of the paper's tables.
//
// Environment:
//   TPI_BENCH_SCALE   scale factor applied to every circuit profile
//                     (default 1.0 = paper-sized; use e.g. 0.2 for smoke runs)
//   TPI_BENCH_VERBOSE set to any value for progress logging on stderr
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "circuits/profiles.hpp"
#include "flow/flow.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace tpi::bench {

inline double bench_scale() {
  const char* env = std::getenv("TPI_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

inline void setup_logging() {
  set_log_level(std::getenv("TPI_BENCH_VERBOSE") != nullptr ? LogLevel::kInfo
                                                            : LogLevel::kWarn);
}

/// The paper's sweep: 0%, 1%, ..., 5% test points (§4.1).
inline const std::vector<double>& tp_percentages() {
  static const std::vector<double> kPercent{0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
  return kPercent;
}

/// Circuit profiles at the configured scale.
inline std::vector<CircuitProfile> bench_profiles() {
  std::vector<CircuitProfile> out;
  for (const CircuitProfile& p : paper_profiles()) {
    if (bench_scale() == 1.0) {
      out.push_back(p);
    } else {
      CircuitProfile s = scaled(p, bench_scale());
      s.name = p.name;  // keep the paper's circuit names in the tables
      out.push_back(s);
    }
  }
  return out;
}

struct SweepResult {
  CircuitProfile profile;
  std::vector<FlowResult> runs;  ///< aligned with tp_percentages()
};

/// Run the full sweep for one circuit. The netlist is regenerated and laid
/// out from scratch for every test-point count, exactly as in §4.1.
inline SweepResult run_sweep(const CircuitProfile& profile, bool with_atpg,
                             bool with_sta,
                             const std::vector<double>& percentages = tp_percentages()) {
  SweepResult out;
  out.profile = profile;
  const auto lib = make_phl130_library();
  for (const double pct : percentages) {
    FlowOptions opts;
    opts.tp_percent = pct;
    opts.run_atpg = with_atpg;
    opts.run_sta = with_sta;
    std::fprintf(stderr, "[bench] %s @ %.0f%% test points...\n", profile.name.c_str(), pct);
    out.runs.push_back(run_flow(*lib, profile, opts));
  }
  return out;
}

/// "x.xx" percentage change relative to the 0% row ("-" for the base row).
inline std::string delta_pct(double value, double base, bool first_row) {
  if (first_row || base == 0.0) return "-";
  return fmt_fixed(100.0 * (value - base) / base, 2);
}

/// Linearity check used for the §4.3/§4.4 "increases nearly linearly"
/// claims: least-squares R^2 of metric vs #test points.
inline LinearFit linearity(const SweepResult& sweep, double (*metric)(const FlowResult&)) {
  std::vector<double> x, y;
  for (const FlowResult& r : sweep.runs) {
    x.push_back(static_cast<double>(r.num_test_points));
    y.push_back(metric(r));
  }
  return fit_linear(x, y);
}

}  // namespace tpi::bench
