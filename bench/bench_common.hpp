// Shared driver for the paper-reproduction benches: runs the Fig. 2 flow on
// the three §4.1 circuits across 0-5% test points and formats rows in the
// layout of the paper's tables. The (circuit × tp_percent) grid executes in
// parallel through SweepRunner; results are bit-identical at any job count.
//
// All environment handling lives in FlowConfig::from_env (flow/flow_config.hpp)
// — bench_config() reads it once per process:
//   TPI_BENCH_SCALE   scale factor applied to every circuit profile
//                     (default 1.0 = paper-sized; use e.g. 0.2 for smoke runs)
//   TPI_BENCH_JOBS    worker threads for the sweep grid
//                     (default: hardware concurrency; 1 = serial)
//   TPI_ATPG_JOBS     fault-simulation worker threads inside each cell's
//                     ATPG stage (default 1: the grid already runs cells in
//                     parallel; raise it for single-circuit runs). Results
//                     are bit-identical at any value.
//   TPI_BENCH_JSON    path to write the aggregate per-stage timing report
//                     (google-benchmark-style JSON with a "metrics"
//                     snapshot; default: not written)
//   TPI_TRACE         path to write a Chrome trace-event JSON of the run
//                     (load in chrome://tracing or Perfetto; default: off)
//   TPI_LOG_LEVEL     debug|info|warn|error|silent (default warn)
//   TPI_BENCH_VERBOSE legacy alias: set (and TPI_LOG_LEVEL unset) = info
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "circuits/profiles.hpp"
#include "flow/flow.hpp"
#include "flow/flow_config.hpp"
#include "flow/sweep.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace tpi::bench {

/// The process-wide bench configuration: compiled defaults + environment,
/// read exactly once. Benches copy it and override per-job fields.
inline const FlowConfig& bench_config() {
  static const FlowConfig kConfig = FlowConfig::from_env();
  return kConfig;
}

inline double bench_scale() { return bench_config().scale; }
inline int bench_jobs() { return bench_config().effective_bench_jobs(); }

inline void setup_logging() { bench_config().apply_process_settings(); }

/// The paper's sweep: 0%, 1%, ..., 5% test points (§4.1).
inline const std::vector<double>& tp_percentages() {
  static const std::vector<double> kPercent{0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
  return kPercent;
}

/// Circuit profiles at the configured scale.
inline std::vector<CircuitProfile> bench_profiles() {
  std::vector<CircuitProfile> out;
  for (const CircuitProfile& p : paper_profiles()) {
    FlowConfig cfg = bench_config();
    cfg.profile = p.name;
    CircuitProfile profile;
    cfg.resolve_profile(profile);  // paper names always resolve
    out.push_back(std::move(profile));
  }
  return out;
}

/// Execute jobs through a SweepRunner sized by the bench config and write
/// the aggregate JSON report when TPI_BENCH_JSON is set.
inline SweepReport run_jobs(std::vector<SweepJob> jobs) {
  const SweepReport report =
      SweepRunner(bench_config()).run(*make_phl130_library(), std::move(jobs));
  if (const std::string& path = bench_config().bench_json; !path.empty()) {
    if (report.write_json(path)) std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  }
  return report;
}

struct SweepResult {
  CircuitProfile profile;
  std::vector<FlowResult> runs;  ///< aligned with the tp percentages swept
};

/// The full paper grid — bench_profiles() × tp_percentages() — run in
/// parallel, repacked per circuit in paper order. Every layout is generated
/// from scratch for every grid cell, exactly as in §4.1. `stages` selects
/// the per-cell flow (e.g. StageMask::all().without(Stage::kReorderAtpg)
/// for the area tables that never look at patterns).
inline std::vector<SweepResult> run_grid(StageMask stages, SweepReport* report_out = nullptr) {
  FlowConfig base = bench_config();
  base.stages = stages;
  const std::vector<CircuitProfile> profiles = bench_profiles();
  SweepReport report = run_jobs(SweepRunner::grid(profiles, tp_percentages(), base));

  std::vector<SweepResult> out;
  std::size_t cell = 0;
  for (const CircuitProfile& profile : profiles) {
    SweepResult sweep;
    sweep.profile = profile;
    for (std::size_t i = 0; i < tp_percentages().size(); ++i) {
      sweep.runs.push_back(report.cells[cell++].result);
    }
    out.push_back(std::move(sweep));
  }
  if (report_out != nullptr) *report_out = std::move(report);
  return out;
}

/// Run the sweep for one circuit (kept for single-circuit benches; the
/// percentages of one circuit still run in parallel).
inline SweepResult run_sweep(const CircuitProfile& profile, StageMask stages,
                             const std::vector<double>& percentages = tp_percentages()) {
  FlowConfig base = bench_config();
  base.stages = stages;
  const SweepReport report = run_jobs(SweepRunner::grid({profile}, percentages, base));
  SweepResult out;
  out.profile = profile;
  for (const SweepCellResult& cell : report.cells) out.runs.push_back(cell.result);
  return out;
}

/// Per-stage wall-clock totals + parallel speedup, as a printable table.
inline std::string stage_totals_table(const SweepReport& report) {
  TextTable table({"stage", "total wall(s)", "share(%)"});
  const double total = report.cpu_ms > 0.0 ? report.cpu_ms : 1.0;
  for (const Stage s : kAllStages) {
    const double ms = report.stage_total_ms[static_cast<std::size_t>(s)];
    table.add_row({stage_name(s), fmt_fixed(ms / 1000.0, 2), fmt_fixed(100.0 * ms / total, 1)});
  }
  table.add_separator();
  table.add_row({"all stages", fmt_fixed(report.cpu_ms / 1000.0, 2), "100.0"});
  std::string out = table.to_string();
  char line[160];
  std::snprintf(line, sizeof line,
                "%zu runs, %d jobs: wall %.2fs, cpu %.2fs, parallel speedup %.2fx\n",
                report.cells.size(), report.jobs, report.wall_ms / 1000.0,
                report.cpu_ms / 1000.0, report.speedup());
  return out + line;
}

/// "x.xx" percentage change relative to the 0% row ("-" for the base row).
inline std::string delta_pct(double value, double base, bool first_row) {
  if (first_row || base == 0.0) return "-";
  return fmt_fixed(100.0 * (value - base) / base, 2);
}

/// Linearity check used for the §4.3/§4.4 "increases nearly linearly"
/// claims: least-squares R^2 of metric vs #test points.
inline LinearFit linearity(const SweepResult& sweep, double (*metric)(const FlowResult&)) {
  std::vector<double> x, y;
  for (const FlowResult& r : sweep.runs) {
    x.push_back(static_cast<double>(r.num_test_points));
    y.push_back(metric(r));
  }
  return fit_linear(x, y);
}

}  // namespace tpi::bench
