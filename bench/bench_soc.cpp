// SOC-scale workloads: composes multi-core chips from the paper circuits,
// runs wrapper/TAM co-optimization plus rectangle bin-packing test
// scheduling per cell, and reports chip-level test application time against
// the serial (one-core-at-a-time) baseline. The cores x TAM grid exercises
// the SocSweepRunner end to end; chip results are bit-identical at any
// TPI_BENCH_JOBS / TPI_ATPG_JOBS and SIMD backend, so the emitted
// TPI_BENCH_JSON doubles as a format/name-wiring baseline for
// tools/bench_compare.py (bench/BENCH_soc.json).
#include "bench_common.hpp"
#include "soc/soc_sweep.hpp"

int main() {
  using namespace tpi;
  using namespace tpi::bench;
  setup_logging();

  std::printf("=== SOC: wrapper/TAM co-optimization + test scheduling ===\n\n");

  const std::vector<int> cores{2, 4};
  const std::vector<int> tam_widths{8, 16};
  const std::vector<double> tp_percents{1.0};
  const SocSweepRunner runner(bench_config());
  const SocSweepReport report = runner.run(
      *make_phl130_library(),
      SocSweepRunner::grid(cores, tam_widths, tp_percents, bench_config()));
  if (const std::string& path = bench_config().bench_json; !path.empty()) {
    if (report.write_json(path)) std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  }

  TextTable table({"chip", "chip TAT(cyc)", "serial TAT(cyc)", "speedup",
                   "TAM util(%)", "wall(s)"});
  for (const SocSweepCellResult& cell : report.cells) {
    const SocResult& r = cell.result;
    const double speedup =
        r.chip_tat_cycles > 0
            ? static_cast<double>(r.serial_tat_cycles) / r.chip_tat_cycles
            : 0.0;
    table.add_row({cell.job.label, std::to_string(r.chip_tat_cycles),
                   std::to_string(r.serial_tat_cycles), fmt_fixed(speedup, 2),
                   fmt_fixed(r.tam_utilization_pct, 1),
                   fmt_fixed(cell.wall_ms / 1000.0, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "%zu chips, %d core-flow jobs: wall %.2fs, cpu %.2fs\n\n"
      "Expected shape: the diagonal-length packer never loses to the serial\n"
      "baseline (speedup >= 1.00x), and wider TAMs trade utilization for\n"
      "shorter chip TAT until the widest core wrapper saturates.\n",
      report.cells.size(), report.jobs, report.wall_ms / 1000.0,
      report.cpu_ms / 1000.0);
  return 0;
}
