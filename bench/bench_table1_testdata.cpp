// Reproduces Table 1 ("Impact of TPI on test data"): for every circuit and
// test-point percentage: #TP, #FF, #chains, l_max, #faults, FC, FE, number
// of stuck-at ATPG patterns with the reduction vs 0% TP, and the resulting
// test data volume (eq. 1) and test application time (eq. 2) reductions.
#include "bench_common.hpp"

int main() {
  using namespace tpi;
  using namespace tpi::bench;
  setup_logging();

  std::printf("=== Table 1: impact of TPI on test data ===\n");
  std::printf("(scale=%.2f; patterns from compact ATPG: random warm-up + PODEM\n"
              " with dynamic compaction + reverse-order static compaction)\n\n",
              bench_scale());

  TextTable table({"circuit", "#TP", "#FF", "#chains", "l_max", "#faults", "FC(%)",
                   "FE(%)", "SAF patterns", "dec.(%)", "TDV(bits)", "TDV dec.(%)",
                   "TAT(cycles)", "TAT dec.(%)"});

  SweepReport report;
  for (const SweepResult& sweep : run_grid(StageMask::all().without(Stage::kExtract).without(Stage::kSta), &report)) {
    const CircuitProfile& profile = sweep.profile;
    const FlowResult& base = sweep.runs.front();
    for (std::size_t i = 0; i < sweep.runs.size(); ++i) {
      const FlowResult& r = sweep.runs[i];
      const bool first = i == 0;
      // The paper reports reductions, i.e. negative deltas printed positive.
      auto reduction = [&](double now, double before) {
        return first ? std::string("-")
                     : fmt_fixed(100.0 * (before - now) / before, 2);
      };
      table.add_row({r.circuit, fmt_int(r.num_test_points), fmt_int(r.num_ffs),
                     fmt_int(r.num_chains), fmt_int(r.max_chain_length),
                     fmt_int(r.num_faults), fmt_fixed(r.fault_coverage_pct, 2),
                     fmt_fixed(r.fault_efficiency_pct, 2), fmt_int(r.saf_patterns),
                     reduction(r.saf_patterns, base.saf_patterns), fmt_int(r.tdv_bits),
                     reduction(static_cast<double>(r.tdv_bits),
                               static_cast<double>(base.tdv_bits)),
                     fmt_int(r.tat_cycles),
                     reduction(static_cast<double>(r.tat_cycles),
                               static_cast<double>(base.tat_cycles))});
    }
    table.add_separator();

    // §4.2 shape checks printed alongside the data.
    const double drop_1pct =
        100.0 * (base.saf_patterns - sweep.runs[1].saf_patterns) / base.saf_patterns;
    const double drop_5pct =
        100.0 * (base.saf_patterns - sweep.runs.back().saf_patterns) / base.saf_patterns;
    std::fprintf(stderr,
                 "[check] %s: pattern reduction %.1f%% @1%% TP, %.1f%% @5%% TP "
                 "(paper: large at 1%%, levelling off)\n",
                 profile.name.c_str(), drop_1pct, drop_5pct);
  }

  std::printf("%s\n", table.to_string().c_str());
  std::fprintf(stderr, "[timing] per-stage totals:\n%s", stage_totals_table(report).c_str());
  std::printf("Paper claims reproduced:\n"
              "  * SAF pattern count drops sharply at 1%% TP and levels off (§4.2)\n"
              "  * #faults rises slightly with TP (test-point logic adds faults)\n"
              "  * FC/FE rise slightly with TP (easy new faults + recovered ones)\n"
              "  * TDV/TAT reductions track the pattern count via eqs. (1)-(2)\n");
  return 0;
}
